//! Integration tests for the budgeted degradation ladder: plan quality
//! against the exact optimum on small queries, structural validity of
//! every winning plan, hard budget enforcement, and the large-query
//! acceptance scenarios (30-relation clique and star).

use dpnext_adaptive::{budget_floor, optimize_adaptive_run, DEFAULT_PLAN_BUDGET};
use dpnext_core::{
    optimize_with, validate_complete_plan, AdaptiveMode, Algorithm, OptimizeOptions,
};
use dpnext_workload::{generate_query, GenConfig, Topology};
use std::time::Instant;

const TOPOLOGIES: [Topology; 5] = [
    Topology::Paper,
    Topology::Chain,
    Topology::Star,
    Topology::Clique,
    Topology::Mixed,
];

fn opts(plan_budget: u64) -> OptimizeOptions {
    OptimizeOptions {
        explain: false,
        threads: 1,
        plan_budget,
        ..OptimizeOptions::default()
    }
}

/// On n ≤ 8 queries of every topology the adaptive result is a valid plan
/// whose cost never beats the exact EA-Prune optimum; when the exact rung
/// completes within the budget the costs agree exactly. The measured
/// quality ratio is recorded on the test output.
#[test]
fn adaptive_never_beats_the_exact_optimum() {
    let o = opts(0);
    let (mut ratios, mut worst) = (Vec::new(), 1.0f64);
    for topo in TOPOLOGIES {
        for n in [3usize, 5, 8] {
            for seed in 0..4u64 {
                let q = generate_query(&GenConfig::topology(n, topo), seed);
                let exact = optimize_with(&q, Algorithm::EaPrune, &o);
                let run = optimize_adaptive_run(&q, &o);
                validate_complete_plan(&run.ctx, &run.memo, run.winner).unwrap_or_else(|e| {
                    panic!("invalid adaptive plan ({topo:?} n={n} seed={seed}): {e}")
                });
                let (a, e) = (run.optimized.plan.cost, exact.plan.cost);
                assert!(
                    a >= e * (1.0 - 1e-9),
                    "adaptive cost {a} beats the exact optimum {e} ({topo:?} n={n} seed={seed})"
                );
                let stats = run.optimized.memo;
                assert!(stats.plan_budget > 0);
                assert!(run.optimized.plans_built <= stats.plan_budget);
                if stats.adaptive_mode == AdaptiveMode::Exact {
                    assert!(
                        (a - e).abs() <= e.abs() * 1e-9,
                        "exact rung completed but costs differ: {a} vs {e}"
                    );
                }
                let ratio = if e > 0.0 { a / e } else { 1.0 };
                worst = worst.max(ratio);
                ratios.push(ratio.max(1e-30).ln());
            }
        }
    }
    let geo = (ratios.iter().sum::<f64>() / ratios.len() as f64).exp();
    println!(
        "adaptive-vs-exact cost ratio over {} queries: geometric mean {geo:.4}, worst {worst:.4}",
        ratios.len()
    );
}

/// `plans_built <= plan_budget` holds for every requested budget,
/// including ones far below what exact DP would need — the ladder then
/// reports a shallower rung and flags exhaustion.
#[test]
fn budget_is_a_hard_cap() {
    let q = generate_query(&GenConfig::topology(12, Topology::Star), 1);
    let floor = budget_floor(12);
    for requested in [1u64, floor, 2_000, 10_000] {
        let run = optimize_adaptive_run(&q, &opts(requested));
        let stats = run.optimized.memo;
        assert_eq!(stats.plan_budget, requested.max(floor));
        assert!(
            run.optimized.plans_built <= stats.plan_budget,
            "plans_built {} exceeds budget {} (requested {requested})",
            run.optimized.plans_built,
            stats.plan_budget
        );
        validate_complete_plan(&run.ctx, &run.memo, run.winner).unwrap();
        assert_ne!(stats.adaptive_mode, AdaptiveMode::None);
    }
    // At the floor the deeper rungs cannot fit on a 12-relation star:
    // the run must degrade and say so.
    let run = optimize_adaptive_run(&q, &opts(floor));
    let stats = run.optimized.memo;
    assert_ne!(stats.adaptive_mode, AdaptiveMode::Exact);
    assert!(stats.degradation.any());
    assert!(
        !stats.degradation.deadline_aborted,
        "no deadline was set; the degradation must be budget-attributed"
    );
}

/// The acceptance scenario: a 30-relation clique optimizes within a tight
/// budget, fast, with a valid plan and `plans_built <= budget` proven by
/// the stats.
#[test]
fn thirty_relation_clique_within_budget() {
    let q = generate_query(&GenConfig::topology(30, Topology::Clique), 0);
    let start = Instant::now();
    let run = optimize_adaptive_run(&q, &opts(20_000));
    let elapsed = start.elapsed();
    let stats = run.optimized.memo;
    assert_eq!(20_000, stats.plan_budget);
    assert!(run.optimized.plans_built <= 20_000);
    assert_ne!(stats.adaptive_mode, AdaptiveMode::None);
    validate_complete_plan(&run.ctx, &run.memo, run.winner).unwrap();
    assert!(
        elapsed.as_secs_f64() < 5.0,
        "30-relation clique took {elapsed:?} (budget demands < 5s)"
    );
}

/// A 30-relation star is the expressible enumeration worst case
/// (`#ccp = 29·2^28`): the exact rung must be skipped by the capped pair
/// count and the ladder must still produce a valid plan within budget.
#[test]
fn thirty_relation_star_degrades_gracefully() {
    let q = generate_query(&GenConfig::topology(30, Topology::Star), 2);
    let start = Instant::now();
    let run = optimize_adaptive_run(&q, &opts(20_000));
    let elapsed = start.elapsed();
    let stats = run.optimized.memo;
    assert_ne!(
        stats.adaptive_mode,
        AdaptiveMode::Exact,
        "exact DP cannot fit a 30-relation star in 20k plans"
    );
    assert!(run.optimized.plans_built <= stats.plan_budget);
    validate_complete_plan(&run.ctx, &run.memo, run.winner).unwrap();
    assert!(elapsed.as_secs_f64() < 5.0, "star took {elapsed:?}");
}

/// Large chains stay exactly optimizable under a generous budget: `#ccp`
/// is `O(n³)` (4 495 pairs at n = 30; the Pareto-wide plan classes still
/// need ~150k plans, above [`DEFAULT_PLAN_BUDGET`]), and when the exact
/// rung completes the budgeted result is the EA-Prune optimum.
#[test]
fn thirty_relation_chain_stays_exact() {
    let mut cfg = GenConfig::topology(30, Topology::Chain);
    // Inner joins only: conflict rules cannot shrink the search space.
    cfg.ops = dpnext_workload::OpWeights::inner_only();
    cfg.with_grouping = false;
    let q = generate_query(&cfg, 3);
    let run = optimize_adaptive_run(&q, &opts(10 * DEFAULT_PLAN_BUDGET));
    assert_eq!(AdaptiveMode::Exact, run.optimized.memo.adaptive_mode);
    assert!(!run.optimized.memo.degradation.any());
    let exact = optimize_with(&q, Algorithm::EaPrune, &opts(0));
    assert_eq!(
        exact.plan.cost.to_bits(),
        run.optimized.plan.cost.to_bits(),
        "completed exact rung must reproduce the EA-Prune optimum"
    );
    validate_complete_plan(&run.ctx, &run.memo, run.winner).unwrap();
}

/// Degenerate sizes run through the ladder too.
#[test]
fn tiny_queries() {
    for n in [1usize, 2] {
        let q = generate_query(&GenConfig::paper(n), 5);
        let run = optimize_adaptive_run(&q, &opts(0));
        validate_complete_plan(&run.ctx, &run.memo, run.winner).unwrap();
        assert_eq!(AdaptiveMode::Exact, run.optimized.memo.adaptive_mode);
    }
}
