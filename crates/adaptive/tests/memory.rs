//! Memory-budget robustness for the degradation ladder: no matter how
//! tight the byte budget, every run must return a structurally valid
//! plan that never beats the exact optimum, keep its live memo bytes
//! within one enumeration work unit of the budget, and attribute the
//! abort to memory in [`dpnext_core::MemoStats::degradation`]. The
//! mirror of `deadline.rs`, with the byte meter in place of the clock.

use dpnext_adaptive::optimize_adaptive_run;
use dpnext_core::{
    optimize_with, validate_complete_plan, AdaptiveMode, Algorithm, OptimizeOptions,
    ARENA_ROW_BYTES, UNIT_MAX_PLANS,
};
use dpnext_workload::{generate_query, GenConfig, Topology};
use proptest::prelude::*;

/// Budget overshoot tolerance: the byte meter is consulted once per
/// enumeration work unit, so a run may exceed its budget by at most one
/// unit's plans — [`UNIT_MAX_PLANS`] arena rows plus their cold payloads
/// (keys, aggregates, visible sets; generously over-estimated here).
const UNIT_SLACK: u64 = UNIT_MAX_PLANS * (ARENA_ROW_BYTES as u64 + 4096);

fn base() -> OptimizeOptions {
    OptimizeOptions {
        explain: false,
        threads: 1,
        ..OptimizeOptions::default()
    }
}

fn budgeted(bytes: u64) -> OptimizeOptions {
    OptimizeOptions {
        memory_budget: bytes,
        ..base()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Memory-budgeted runs on chains, stars and cliques return
    /// `validate_complete_plan`-clean plans that never beat the exact
    /// EA-Prune optimum, and their live-byte peak stays within one work
    /// unit of the budget — for budgets from "aborts mid-exact" to
    /// "ample". (Budgets start above any n≤9 greedy footprint, so the
    /// unchecked guaranteed rung cannot be the peak.)
    #[test]
    fn budgeted_plans_are_valid_bounded_and_never_beat_exact(
        topo_ix in 0usize..3,
        n in 4usize..=9,
        seed in 0u64..1_000,
        budget_kib in 256u64..4096,
    ) {
        let topo = [Topology::Chain, Topology::Star, Topology::Clique][topo_ix];
        let q = generate_query(&GenConfig::topology(n, topo), seed);
        let budget = budget_kib * 1024;
        let run = optimize_adaptive_run(&q, &budgeted(budget));
        if let Err(e) = validate_complete_plan(&run.ctx, &run.memo, run.winner) {
            prop_assert!(
                false,
                "invalid budgeted plan ({topo:?} n={n} seed={seed} mb={budget_kib}KiB): {e}"
            );
        }
        let stats = run.optimized.memo;
        prop_assert_eq!(budget, stats.memory_budget, "budget must be recorded");
        prop_assert!(
            stats.live_bytes_peak <= budget + UNIT_SLACK,
            "live-byte peak {} exceeds budget {} by more than one work unit \
             ({topo:?} n={n} seed={seed})",
            stats.live_bytes_peak, budget
        );
        let exact = optimize_with(&q, Algorithm::EaPrune, &base());
        let (a, e) = (run.optimized.plan.cost, exact.plan.cost);
        prop_assert!(
            a >= e * (1.0 - 1e-9),
            "budgeted cost {a} beats the exact optimum {e} \
             ({topo:?} n={n} seed={seed} mb={budget_kib}KiB)"
        );
    }
}

/// A budget the guaranteed rung alone fills ships the greedy plan and
/// says why: the ladder degrades, it never fails.
#[test]
fn exhausted_budget_ships_the_greedy_plan() {
    let q = generate_query(&GenConfig::topology(12, Topology::Star), 0);
    let run = optimize_adaptive_run(&q, &budgeted(1));
    let stats = run.optimized.memo;
    assert!(stats.degradation.memory_aborted);
    assert_eq!(AdaptiveMode::Greedy, stats.adaptive_mode);
    validate_complete_plan(&run.ctx, &run.memo, run.winner).unwrap();
}

/// With ample bytes a budget-only run completes the exact rung (the huge
/// resource-only plan budget makes the byte meter the only binding
/// resource) and reproduces the unconstrained EA-Prune optimum bit for
/// bit, with no degradation recorded — the acceptance pin that a
/// non-binding budget changes nothing.
#[test]
fn ample_budget_stays_bit_identical_to_unconstrained() {
    let q = generate_query(&GenConfig::paper(6), 4);
    let run = optimize_adaptive_run(&q, &budgeted(1 << 40));
    let stats = run.optimized.memo;
    assert_eq!(AdaptiveMode::Exact, stats.adaptive_mode);
    assert!(!stats.degradation.any());
    let exact = optimize_with(&q, Algorithm::EaPrune, &base());
    assert_eq!(
        exact.plan.cost.to_bits(),
        run.optimized.plan.cost.to_bits(),
        "completed exact rung under an ample budget must reproduce the optimum"
    );
}

/// The acceptance scenario: a 30-relation star (the expressible
/// enumeration worst case, `#ccp = 29·2^28`) under a 2 MiB budget
/// returns a valid plan whose live-byte peak honors the budget — the
/// exact rung is aborted mid-stream by the byte meter, not run to
/// exhaustion.
#[test]
fn thirty_relation_star_respects_memory_budget() {
    let q = generate_query(&GenConfig::topology(30, Topology::Star), 2);
    let budget = 2 << 20;
    let run = optimize_adaptive_run(&q, &budgeted(budget));
    let stats = run.optimized.memo;
    assert!(
        stats.degradation.memory_aborted,
        "exact DP cannot fit 29·2^28 pairs in 2 MiB of live plans"
    );
    validate_complete_plan(&run.ctx, &run.memo, run.winner).unwrap();
    assert!(
        stats.live_bytes_peak <= budget + UNIT_SLACK,
        "live-byte peak {} blew past the 2 MiB budget",
        stats.live_bytes_peak
    );
}
