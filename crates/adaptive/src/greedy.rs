//! The greedy rung: a GOO-style join-ordering pass over the query
//! hypergraph (Fearnley/Moerkotte's "greedy operator ordering" shape:
//! repeatedly merge the pair of components with the smallest estimated
//! join result), built directly on the budgeted engine so every merge
//! explores the eager/lazy aggregation variants of the paper and the
//! constructed plans land in the shared memo.
//!
//! The pass also produces the **linear order** the linearized DP rung
//! refines: relations in the left-to-right traversal order of the greedy
//! merge tree. Every greedy subtree is a contiguous interval of that
//! order, so interval DP explores a superset of the greedy tree and its
//! result can only be as good or better.
//!
//! When the greedy pair selection dead-ends (conflict rules can paint an
//! arbitrary merge order into a corner), the pass falls back to replaying
//! the query's canonical operator tree bottom-up — the one merge sequence
//! conflict detection guarantees to be applicable.

use dpnext_conflict::applicable_ops_into;
use dpnext_core::{BudgetedSearch, Memo, OptContext};
use dpnext_cost::join_card;
use dpnext_hypergraph::NodeSet;
use dpnext_query::{OpKind, OpTree};

/// One greedy component: the relations it covers and their order in the
/// component's merge-tree traversal.
struct Component {
    set: NodeSet,
    order: Vec<usize>,
}

/// What the greedy pass hands back to the ladder.
pub struct GreedyOutcome {
    /// Linearization of the relations: the greedy merge tree's traversal
    /// order (or the canonical tree's, after a fallback).
    pub order: Vec<usize>,
    /// Whether the canonical-tree fallback had to run.
    pub fell_back: bool,
}

/// Run the greedy pass on `search`. On success the memo holds a complete
/// plan (the search's keep-best) and one or two representative plans per
/// greedy subtree class; the returned order linearizes the merge tree.
pub fn greedy_join(search: &mut BudgetedSearch<'_>, ctx: &OptContext) -> GreedyOutcome {
    let n = ctx.query.table_count();
    let mut comps: Vec<Component> = (0..n)
        .map(|i| Component {
            set: NodeSet::single(i),
            order: vec![i],
        })
        .collect();
    let mut apps: Vec<(usize, bool)> = Vec::new();
    while comps.len() > 1 && !search.exhausted() {
        // The applicable pair with the smallest estimated join result.
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..comps.len() {
            for j in i + 1..comps.len() {
                let Some(card) =
                    estimate_pair(ctx, search.memo(), comps[i].set, comps[j].set, &mut apps)
                else {
                    continue;
                };
                if best.is_none_or(|(_, _, c)| card < c) {
                    best = Some((i, j, card));
                }
            }
        }
        let Some((i, j, _)) = best else {
            break; // no applicable pair: conflict-rule dead end
        };
        let union = comps[i].set.union(comps[j].set);
        search.process(comps[i].set, comps[j].set);
        if union != NodeSet::full(n) && search.class_len(union) == 0 {
            break; // every variant was rejected: dead end
        }
        // GOO keeps one plan per component (plus a raw alternative when
        // groupjoins need one); without this the class widths would
        // compound across merges and the greedy floor would not hold.
        search.shrink_class_to_best(union);
        let Component { order: jorder, .. } = comps.swap_remove(j);
        comps[i].set = union;
        comps[i].order.extend(jorder);
    }
    if comps.len() == 1 && search.has_best() {
        return GreedyOutcome {
            order: std::mem::take(&mut comps[0].order),
            fell_back: false,
        };
    }
    // Fallback: replay the canonical operator tree bottom-up. Operators
    // are collected in post-order, so every operator's input classes are
    // populated (by scans or by earlier operators) when it is processed.
    for k in 0..ctx.cq.ops.len() {
        let op = &ctx.cq.ops[k];
        if search.class_len(op.left_rels) == 0 || search.class_len(op.right_rels) == 0 {
            continue; // an earlier application dead-ended; no plan here
        }
        search.process(op.left_rels, op.right_rels);
        let union = op.left_rels.union(op.right_rels);
        if union != NodeSet::full(n) {
            search.shrink_class_to_best(union);
        }
    }
    GreedyOutcome {
        order: traversal_order(&ctx.query.tree),
        fell_back: true,
    }
}

/// Relations in left-to-right traversal order of an operator tree: every
/// subtree maps to a contiguous interval of the result.
pub fn traversal_order(tree: &OpTree) -> Vec<usize> {
    fn walk(t: &OpTree, out: &mut Vec<usize>) {
        match t {
            OpTree::Rel(i) => out.push(*i),
            OpTree::Binary { left, right, .. } => {
                walk(left, out);
                walk(right, out);
            }
        }
    }
    let mut out = Vec::new();
    walk(tree, &mut out);
    out
}

/// Estimated result cardinality of joining the components `a` and `b`,
/// or `None` when no operator is applicable to the cut. Mirrors the
/// engine's estimate (`make_apply`) without constructing a plan: the
/// primary operator's `join_card` over the cheapest representative of
/// each side, with the selectivities of extra same-cut inner joins
/// multiplied in.
fn estimate_pair(
    ctx: &OptContext,
    memo: &Memo,
    a: NodeSet,
    b: NodeSet,
    apps: &mut Vec<(usize, bool)>,
) -> Option<f64> {
    applicable_ops_into(&ctx.cq, a, b, apps);
    let &(primary, swapped) = apps.first()?;
    // Mirror the engine's orientation rule (`orientations_into`): a cut
    // crossed by several *distinct* operators builds plans only when they
    // are all inner joins (merged into one application) — for any other
    // mix the engine constructs nothing, so selecting the pair would
    // dead-end the greedy pass. `apps` is sorted by operator index.
    let mut distinct = 0usize;
    let mut all_join = true;
    let mut prev = usize::MAX;
    for &(idx, _) in apps.iter() {
        if idx != prev {
            distinct += 1;
            all_join &= ctx.cq.ops[idx].op == OpKind::Join;
            prev = idx;
        }
    }
    if distinct > 1 && !all_join {
        return None;
    }
    let (sl, sr) = if swapped { (b, a) } else { (a, b) };
    let lcard = class_min_card(memo, sl)?;
    let rcard = class_min_card(memo, sr)?;
    let op = &ctx.cq.ops[primary];
    let mut sel = op.sel;
    // `apps` is sorted by (index, orientation): skip duplicate entries of
    // one operator (commutative operators appear in both orientations).
    let mut last = primary;
    for &(idx, _) in apps.iter() {
        if idx != last && ctx.cq.ops[idx].op == OpKind::Join {
            sel *= ctx.cq.ops[idx].sel;
        }
        last = idx;
    }
    let d_left: f64 = op
        .pred
        .left_attrs()
        .iter()
        .map(|&at| ctx.distinct(at))
        .product();
    let d_right: f64 = op
        .pred
        .right_attrs()
        .iter()
        .map(|&at| ctx.distinct(at))
        .product();
    Some(join_card(op.op, lcard, rcard, sel, d_left, d_right))
}

/// Cardinality of the cheapest plan in the class of `s`.
fn class_min_card(memo: &Memo, s: NodeSet) -> Option<f64> {
    memo.class(s)
        .iter()
        .map(|&id| memo[id].card)
        .min_by(f64::total_cmp)
}
