//! # dpnext-adaptive
//!
//! The large-query subsystem: budgeted plan search with graceful
//! degradation, so the optimizer **never blows up** — exact DP is superb
//! up to ~10 relations and hopeless at 30, where production optimizers
//! switch to greedy/linearized construction under an enumeration budget.
//!
//! [`optimize_adaptive`] runs a three-rung ladder on one shared
//! [`BudgetedSearch`] (one memo, one plan counter, one hard budget):
//!
//! 1. **Greedy** (always): a GOO-style pass merging the component pair
//!    with the smallest estimated join result, exploring the paper's
//!    eager/lazy aggregation variants at every merge. Cheap — the
//!    effective budget is clamped to a floor that always fits it — and
//!    its merge tree yields the linear relation order for rung 3.
//! 2. **Exact DP**: attempted only when a capped csg-cmp-pair count
//!    ([`count_ccps_capped`]) shows the full DPhyp stream plausibly fits,
//!    and run under **half** the remaining budget (the rest is reserved
//!    for rung 3, so an aborted exact stream cannot starve it); aborted
//!    mid-stream the moment its sub-budget runs out. Completing this rung
//!    makes the result the EA-Prune optimum; an aborted stream's plans
//!    still compete (reported as `PartialExact` when one wins).
//! 3. **Linearized DP**: exact DP restricted to connected contiguous
//!    intervals of the greedy linear order (`O(n³)` splits instead of
//!    exponential), never worse than the greedy plan because every greedy
//!    merge appears as an interval split.
//!
//! Every rung funnels through the same engine (`op_trees`, dominance
//! pruning, `C_out`), so aggregation placement stays explored at scale,
//! and `plans_built <= plan_budget` holds no matter which rung wins —
//! [`dpnext_core::MemoStats::plan_budget`],
//! [`dpnext_core::MemoStats::degradation`] (gate vs mid-stream budget
//! abort vs deadline abort) and [`dpnext_core::MemoStats::adaptive_mode`]
//! report what happened.
//!
//! A wall-clock [`OptimizeOptions::deadline`] rides the same ladder: the
//! exact and linearized rungs run under sub-deadlines checked once per
//! enumeration work unit (overshoot bounded by one unit), and the greedy
//! floor guarantees a valid plan exists before the clock is ever
//! consulted — a deadlined run *degrades*, it never fails.
//!
//! A per-request [`OptimizeOptions::memory_budget`] (bytes of live memo
//! state, [`dpnext_core::Memo::live_bytes`]) rides it the same way: the
//! exact rung runs under half the remaining byte headroom (mirroring the
//! 50/50 plan-budget split), the linearized rung under the full budget,
//! both checked once per work unit; the greedy rung runs unchecked, like
//! it ignores the clock, so a valid plan always exists. The abort is
//! recorded as [`Degradation::memory_aborted`].
//!
//! This crate sits **above** `dpnext-core` (it drives the core's budgeted
//! engine hook); the `dpnext::Optimizer` facade dispatches
//! `Algorithm::Adaptive` here.

mod greedy;
mod linear;

pub use greedy::{greedy_join, traversal_order, GreedyOutcome};
pub use linear::linearized_dp;

use dpnext_core::{
    explain, finalize, AdaptiveMode, BudgetedSearch, Degradation, Memo, OptContext,
    OptimizeOptions, Optimized, PlanId, UNIT_MAX_PLANS,
};
use dpnext_hypergraph::{count_ccps_capped, try_enumerate_ccps, NodeSet};
use dpnext_query::Query;
use std::ops::ControlFlow;
use std::time::Instant;

/// Default plan budget when [`OptimizeOptions::plan_budget`] is 0.
pub const DEFAULT_PLAN_BUDGET: u64 = 100_000;

/// Effective plan budget for deadline-only runs
/// ([`OptimizeOptions::deadline`] set, [`OptimizeOptions::plan_budget`]
/// left 0): practically unbounded, so wall-clock time — not the plan
/// counter — is the binding resource the ladder degrades on.
pub const DEADLINE_PLAN_BUDGET: u64 = 1 << 42;

/// The smallest budget the ladder accepts for an `n`-relation query:
/// enough for the greedy pass (and its canonical-tree fallback) to finish
/// no matter what — per merge at most `2 × 2` representative subplan
/// combinations in two orientations, [`UNIT_MAX_PLANS`] plans each, for
/// both passes. Requests below the floor are clamped up, so a valid plan
/// always fits; the clamped value is what
/// [`dpnext_core::MemoStats::plan_budget`] reports and what `plans_built`
/// never exceeds.
pub fn budget_floor(n: usize) -> u64 {
    128 * n.max(1) as u64
}

/// One adaptive optimization with full access to the search state, for
/// tests and diagnostics that want to validate or inspect the winning
/// plan ([`dpnext_core::validate_complete_plan`] needs the memo and id).
pub struct AdaptiveRun {
    pub optimized: Optimized,
    /// The optimization context (owns a clone of the query).
    pub ctx: OptContext,
    /// The memo owning every plan the ladder built.
    pub memo: Memo,
    /// Memo id of the winning complete plan.
    pub winner: PlanId,
}

/// Optimize `query` with the budgeted degradation ladder. See the crate
/// docs for the rung semantics; `opts.plan_budget` (0 = default, clamped
/// to [`budget_floor`]) caps the plans built, `opts.dominance` tunes the
/// pruning, `opts.threads` is ignored (budget enforcement is sequential).
///
/// Panics like the exact engine when the query graph is disconnected or
/// over-constrained (no complete plan exists).
pub fn optimize_adaptive(query: &Query, opts: &OptimizeOptions) -> Optimized {
    optimize_adaptive_run(query, opts).optimized
}

/// [`optimize_adaptive`] returning the whole [`AdaptiveRun`].
pub fn optimize_adaptive_run(query: &Query, opts: &OptimizeOptions) -> AdaptiveRun {
    let ctx = OptContext::new(query.clone());
    let n = ctx.query.table_count();
    let memory_budget = (opts.memory_budget != 0).then_some(opts.memory_budget);
    // A resource-only run (deadline and/or memory budget set, plan budget
    // left 0) gets a practically unbounded plan budget: the clock or the
    // byte meter, not the counter, drives degradation.
    let resource_only =
        (opts.deadline.is_some() || memory_budget.is_some()) && opts.plan_budget == 0;
    let requested = if opts.plan_budget != 0 {
        opts.plan_budget
    } else if resource_only {
        DEADLINE_PLAN_BUDGET
    } else {
        DEFAULT_PLAN_BUDGET
    };
    let budget = requested.max(budget_floor(n));
    let start = Instant::now();
    let deadline = opts.deadline.map(|d| start + d);
    let mut ladder_span = dpnext_obs::span("adaptive.optimize");
    ladder_span.tag_u64("n", n as u64);
    ladder_span.tag_u64("plan_budget", budget);
    let mut search = BudgetedSearch::new(&ctx, opts.dominance, budget);
    search.set_unit_delay(opts.fault_unit_delay);
    let mut mode = AdaptiveMode::Greedy;
    let mut degr = Degradation::default();
    if n == 1 {
        mode = AdaptiveMode::Exact; // the scan is the (optimal) plan
    } else {
        // Rung 1: greedy, always run to completion without consulting the
        // clock — the budget floor guarantees it fits, and its plan is
        // what makes every deadlined request *degrade* instead of fail.
        let mut rung_span = dpnext_obs::span("adaptive.rung.greedy");
        let greedy = greedy_join(&mut search, &ctx);
        rung_span.tag_u64("plans_built", search.plans_built());
        drop(rung_span);
        if search.exhausted() {
            degr.budget_aborted = true;
        }
        search.reset_exhausted();
        let best_after_greedy = search.best_cost();
        if deadline.is_some_and(|dl| Instant::now() >= dl) {
            // The clock ran out during the guaranteed rung: the greedy
            // plan ships as-is.
            degr.deadline_aborted = true;
        } else if memory_budget.is_some_and(|mb| search.live_bytes() >= mb) {
            // The guaranteed rung alone filled the byte budget: its plan
            // ships as-is — deeper rungs could only grow the memo.
            degr.memory_aborted = true;
        } else {
            // Rung 2: the full exact stream, under HALF the remaining
            // budget — an aborted exact run must not starve the
            // linearized rung, which is the one strategy that reliably
            // beats greedy when exact DP does not fit (class widths can
            // blow the budget mid-stream on topologies the pair-count
            // gate admits). The gate itself is capped so a dense graph
            // costs at most ~allowance probe steps, never the full
            // exponential walk; it stays optimistic (it cannot know class
            // widths) — the per-pair budget enforcement is what actually
            // bounds the work. Deadline-only runs skip the gate entirely:
            // their huge budget would make the capped pre-count itself
            // the blowup, and the mid-stream deadline abort subsumes it.
            let full_budget = search.budget();
            let reserve = search.remaining() / 2;
            let cap = (search.remaining() - reserve) / UNIT_MAX_PLANS;
            let mut done = false;
            let mut rung_span = dpnext_obs::span("adaptive.rung.exact");
            let gate_open = resource_only || count_ccps_capped(&ctx.cq.graph, cap).is_some();
            if gate_open {
                search.set_budget(full_budget - reserve);
                if let Some(dl) = deadline {
                    // Sub-deadline at the midpoint of the remaining time:
                    // mirrors the 50/50 budget split, so an endless exact
                    // stream cannot starve the linearized rung of clock.
                    let now = Instant::now();
                    search.set_deadline(Some(now + dl.saturating_duration_since(now) / 2));
                }
                if let Some(mb) = memory_budget {
                    // Sub-budget at the midpoint of the remaining byte
                    // headroom — the same 50/50 reservation, so an exact
                    // stream aborted for memory leaves the linearized
                    // rung room to improve on greedy.
                    let live = search.live_bytes();
                    search.set_memory_budget(Some(live + (mb - live) / 2));
                }
                let flow = try_enumerate_ccps(&ctx.cq.graph, |s1, s2| {
                    if search.process(s1, s2) {
                        ControlFlow::Continue(())
                    } else {
                        ControlFlow::Break(())
                    }
                });
                search.set_budget(full_budget);
                if flow.is_continue() && !search.exhausted() {
                    mode = AdaptiveMode::Exact;
                    done = true;
                    rung_span.tag_str("outcome", "completed");
                } else {
                    if search.deadline_hit() {
                        degr.deadline_aborted = true;
                        rung_span.tag_str("outcome", "deadline-aborted");
                    } else if search.memory_hit() {
                        degr.memory_aborted = true;
                        rung_span.tag_str("outcome", "memory-aborted");
                    } else {
                        degr.budget_aborted = true;
                        rung_span.tag_str("outcome", "budget-aborted");
                    }
                    search.reset_exhausted();
                }
            } else {
                // The gate itself is a budget decision: the result will
                // come from a shallower rung than exact DP.
                degr.budget_gated = true;
                rung_span.tag_str("outcome", "budget-gated");
            }
            rung_span.tag_u64("plans_built", search.plans_built());
            drop(rung_span);
            // Rung 3: interval DP over the greedy linear order, under the
            // full remaining deadline. The reported mode is the rung that
            // actually produced the winning plan — keep-best costs only
            // ever improve, so stage snapshots identify the producer even
            // when a rung was aborted partway.
            if !done {
                let best_after_exact = search.best_cost();
                search.set_deadline(deadline);
                search.set_memory_budget(memory_budget);
                let mut rung_span = dpnext_obs::span("adaptive.rung.linearized");
                let lin_done = linearized_dp(&mut search, &ctx, &greedy.order);
                if !lin_done {
                    if search.deadline_hit() {
                        degr.deadline_aborted = true;
                        rung_span.tag_str("outcome", "deadline-aborted");
                    } else if search.memory_hit() {
                        degr.memory_aborted = true;
                        rung_span.tag_str("outcome", "memory-aborted");
                    } else {
                        degr.budget_aborted = true;
                        rung_span.tag_str("outcome", "budget-aborted");
                    }
                    search.reset_exhausted();
                } else {
                    rung_span.tag_str("outcome", "completed");
                }
                rung_span.tag_u64("plans_built", search.plans_built());
                drop(rung_span);
                let improved = |before: Option<f64>, after: Option<f64>| match (before, after) {
                    (Some(b), Some(a)) => a < b,
                    (None, Some(_)) => true,
                    _ => false,
                };
                mode = if improved(best_after_exact, search.best_cost()) {
                    AdaptiveMode::Linearized
                } else if improved(best_after_greedy, best_after_exact) {
                    AdaptiveMode::PartialExact
                } else if lin_done {
                    // Completed without improving: the greedy plan *is*
                    // the linearized optimum (every greedy merge is a
                    // split).
                    AdaptiveMode::Linearized
                } else {
                    AdaptiveMode::Greedy
                };
            }
        }
    }
    if search.exhausted() {
        // Belt-and-braces: an abort path that forgot to attribute itself.
        if search.deadline_hit() {
            degr.deadline_aborted = true;
        } else if search.memory_hit() {
            degr.memory_aborted = true;
        } else {
            degr.budget_aborted = true;
        }
    }
    let outcome = search.finish();
    let mut memo = outcome.memo;
    let (plan, winner) = if n == 1 {
        let id = memo.class(NodeSet::full(1))[0];
        (finalize(&ctx, &memo, id), id)
    } else {
        outcome
            .best
            .expect("no plan found: query graph disconnected or over-constrained")
    };
    memo.record_budget(budget, opts.memory_budget, degr, mode);
    if ladder_span.is_recording() {
        ladder_span.tag_text("mode", mode.to_string());
        ladder_span.tag_text("degradation", degr.to_string());
        ladder_span.tag_u64("plans_built", outcome.plans_built);
        ladder_span.tag_u64("live_bytes_peak", memo.stats().live_bytes_peak);
    }
    drop(ladder_span);
    // Search time excludes EXPLAIN rendering, like the exact engine.
    let elapsed = start.elapsed();
    let explain = if opts.explain {
        explain(&ctx, &memo, winner)
    } else {
        String::new()
    };
    let optimized = Optimized {
        plan,
        explain,
        plans_built: outcome.plans_built,
        retained_plans: memo.retained(),
        memo: memo.stats(),
        elapsed,
    };
    AdaptiveRun {
        optimized,
        ctx,
        memo,
        winner,
    }
}
