//! The linearized-DP rung: exact DP restricted to **connected contiguous
//! intervals** of a linear relation order (IKKBZ-flavored — the order
//! comes from the greedy merge tree, whose every subtree is an interval
//! of it).
//!
//! For an order `π` the DP table is indexed by intervals `π[i..j)`; each
//! interval is built from every split `π[i..k) ◦ π[k..j)` whose halves
//! hold plans and whose cut some operator crosses. The pairs feed the
//! same engine (`op_trees` + dominance pruning) as the exact search, so
//! eager/lazy aggregation placement is explored at every split — only the
//! *join-order* space is restricted, from exponential to `O(n³)` splits.
//! Because the greedy tree's merges all appear as splits, the linearized
//! optimum is never worse than the greedy plan.

use dpnext_core::{BudgetedSearch, OptContext};
use dpnext_hypergraph::NodeSet;

/// Run interval DP over `order` on `search`, bottom-up by interval
/// length. Returns `true` when every split was processed within the
/// budget; `false` when the budget ran out (the search keeps the best
/// complete plan seen so far, typically the greedy one).
pub fn linearized_dp(search: &mut BudgetedSearch<'_>, ctx: &OptContext, order: &[usize]) -> bool {
    let n = order.len();
    debug_assert_eq!(n, ctx.query.table_count());
    // prefix[i] = set of the first i relations of the order, so the set
    // of interval [i, j) is prefix[j] \ prefix[i].
    let mut prefix = vec![NodeSet::EMPTY; n + 1];
    for (i, &rel) in order.iter().enumerate() {
        prefix[i + 1] = prefix[i].insert(rel);
    }
    let interval = |i: usize, j: usize| prefix[j].difference(prefix[i]);
    for len in 2..=n {
        for start in 0..=(n - len) {
            let end = start + len;
            let s = interval(start, end);
            // Disconnected intervals can never produce a plan; skipping
            // them early keeps the probe loop cheap on sparse topologies
            // (on a star order, only prefixes containing the hub survive).
            if !ctx.cq.graph.is_connected(s) {
                continue;
            }
            for split in start + 1..end {
                let a = interval(start, split);
                let b = interval(split, end);
                if search.class_len(a) == 0 || search.class_len(b) == 0 {
                    continue;
                }
                if !search.process(a, b) {
                    return false;
                }
            }
        }
    }
    true
}
