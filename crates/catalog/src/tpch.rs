//! TPC-H metadata (SF-1 statistics) and a synthetic data generator.
//!
//! The paper's Table 2 uses "query statistics taken from a scale factor 1
//! instance of TPC-H"; the cardinalities and distinct counts below are the
//! public SF-1 numbers. The data generator produces scaled-down but
//! distribution-faithful instances (sequential keys, uniform foreign keys)
//! for executing plans on the algebra interpreter — our substitute for the
//! paper's HyPer measurements (see DESIGN.md).

use crate::catalog::Catalog;
use dpnext_algebra::{AttrId, Database, Relation, Value};
use dpnext_query::QueryTable;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Build a catalog with the TPC-H tables (the subset of columns used by
/// the paper's queries Ex, Q3, Q5 and Q10), with SF-1 statistics.
pub fn tpch_catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_relation(
        "region",
        5.0,
        &[("r_regionkey", 5.0), ("r_name", 5.0)],
        &[&["r_regionkey"]],
    );
    c.add_relation(
        "nation",
        25.0,
        &[
            ("n_nationkey", 25.0),
            ("n_name", 25.0),
            ("n_regionkey", 5.0),
        ],
        &[&["n_nationkey"]],
    );
    c.add_relation(
        "supplier",
        10_000.0,
        &[
            ("s_suppkey", 10_000.0),
            ("s_nationkey", 25.0),
            ("s_acctbal", 9_955.0),
        ],
        &[&["s_suppkey"]],
    );
    c.add_relation(
        "customer",
        150_000.0,
        &[
            ("c_custkey", 150_000.0),
            ("c_nationkey", 25.0),
            ("c_mktsegment", 5.0),
            ("c_acctbal", 140_187.0),
        ],
        &[&["c_custkey"]],
    );
    c.add_relation(
        "orders",
        1_500_000.0,
        &[
            ("o_orderkey", 1_500_000.0),
            ("o_custkey", 99_996.0),
            ("o_orderdate", 2_406.0),
            ("o_shippriority", 1.0),
            ("o_totalprice", 1_464_556.0),
        ],
        &[&["o_orderkey"]],
    );
    c.add_relation(
        "lineitem",
        6_001_215.0,
        &[
            ("l_orderkey", 1_500_000.0),
            ("l_suppkey", 10_000.0),
            ("l_extendedprice", 933_900.0),
            ("l_discount", 11.0),
            ("l_shipdate", 2_526.0),
            ("l_returnflag", 3.0),
            ("l_quantity", 50.0),
        ],
        &[],
    );
    c
}

/// Synthetic TPC-H data generator at a configurable scale.
///
/// `scale = 1.0` is SF-1; the execution experiments use small scales
/// (e.g. `0.01`) so the interpreted canonical plans stay tractable.
/// Distributions follow dbgen's shape: sequential primary keys, uniform
/// foreign keys into the full referenced key range.
pub struct TpchGen {
    scale: f64,
    rng: StdRng,
}

impl TpchGen {
    pub fn new(scale: f64, seed: u64) -> Self {
        TpchGen {
            scale,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Scaled cardinality of a TPC-H table (`nation`/`region` are fixed).
    pub fn card(&self, table: &str) -> usize {
        let base = match table {
            "region" => return 5,
            "nation" => return 25,
            "supplier" => 10_000.0,
            "customer" => 150_000.0,
            "orders" => 1_500_000.0,
            "lineitem" => 6_001_215.0,
            other => panic!("unknown TPC-H table {other}"),
        };
        ((base * self.scale).round() as usize).max(1)
    }

    /// Generate one table occurrence's relation. `mapping` maps TPC-H
    /// column names to the occurrence's attribute ids (from
    /// [`Catalog::instantiate`]).
    pub fn generate(&mut self, table: &str, mapping: &HashMap<String, AttrId>) -> Relation {
        let n = self.card(table);
        let columns: Vec<(&String, &AttrId)> = {
            let mut v: Vec<_> = mapping.iter().collect();
            v.sort_by_key(|(_, &id)| id);
            v
        };
        let mut rows: Vec<Vec<Value>> = Vec::with_capacity(n);
        for row in 0..n {
            let mut vals = Vec::with_capacity(columns.len());
            for (name, _) in &columns {
                vals.push(self.value(table, name, row));
            }
            rows.push(vals);
        }
        let attrs: Vec<AttrId> = columns.iter().map(|(_, &id)| id).collect();
        Relation::from_rows(attrs, rows)
    }

    fn uniform(&mut self, d: usize) -> Value {
        Value::Int(self.rng.gen_range(0..d.max(1)) as i64)
    }

    fn value(&mut self, table: &str, column: &str, row: usize) -> Value {
        match (table, column) {
            // Sequential primary keys.
            (_, "r_regionkey")
            | (_, "n_nationkey")
            | (_, "s_suppkey")
            | (_, "c_custkey")
            | (_, "o_orderkey") => Value::Int(row as i64),
            // 1:1 name columns (kept integer-coded).
            (_, "r_name") | (_, "n_name") => Value::Int(row as i64),
            // Foreign keys: uniform over the referenced key range.
            (_, "n_regionkey") => self.uniform(5),
            (_, "s_nationkey") | (_, "c_nationkey") => self.uniform(25),
            (_, "o_custkey") => {
                let c = self.card("customer");
                self.uniform(c)
            }
            (_, "l_orderkey") => {
                let o = self.card("orders");
                self.uniform(o)
            }
            (_, "l_suppkey") => {
                let s = self.card("supplier");
                self.uniform(s)
            }
            // Value columns: uniform over their distinct count.
            (_, "c_mktsegment") => self.uniform(5),
            (_, "o_shippriority") => Value::Int(0),
            (_, "o_orderdate") | (_, "l_shipdate") => self.uniform(2_406),
            (_, "l_returnflag") => self.uniform(3),
            (_, "l_discount") => self.uniform(11),
            (_, "l_quantity") => self.uniform(50),
            (_, "l_extendedprice") | (_, "o_totalprice") | (_, "s_acctbal") | (_, "c_acctbal") => {
                self.uniform(100_000)
            }
            (t, c) => panic!("no generator for {t}.{c}"),
        }
    }
}

/// Generate a database for a set of instantiated table occurrences:
/// `(tpch table name, query table, column mapping)`.
pub fn generate_database(
    scale: f64,
    seed: u64,
    occurrences: &[(&str, &QueryTable, &HashMap<String, AttrId>)],
) -> Database {
    let mut db = Database::new();
    for (i, (table, qt, mapping)) in occurrences.iter().enumerate() {
        let mut gen = TpchGen::new(scale, seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        db.insert(qt.alias.clone(), gen.generate(table, mapping));
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sf1_statistics() {
        let c = tpch_catalog();
        assert_eq!(25.0, c.relation("nation").card);
        assert_eq!(6_001_215.0, c.relation("lineitem").card);
        assert_eq!(25.0, c.relation("supplier").attr("s_nationkey").distinct);
        assert_eq!(1, c.relation("customer").keys.len());
    }

    #[test]
    fn scaled_cardinalities() {
        let g = TpchGen::new(0.01, 1);
        assert_eq!(25, g.card("nation")); // fixed
        assert_eq!(100, g.card("supplier"));
        assert_eq!(1_500, g.card("customer"));
    }

    #[test]
    fn generated_relation_shape() {
        let mut c = tpch_catalog();
        let (qt, mapping) = c.instantiate("nation", "n1");
        let mut g = TpchGen::new(1.0, 42);
        let rel = g.generate("nation", &mapping);
        assert_eq!(25, rel.len());
        assert_eq!(3, rel.schema().len());
        // Keys are sequential and unique.
        let keys: Vec<i64> = rel
            .tuples()
            .iter()
            .map(|t| {
                t[rel.schema().pos_of(mapping["n_nationkey"])]
                    .as_int()
                    .unwrap()
            })
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(25, sorted.len());
        let _ = qt;
    }

    #[test]
    fn database_generation() {
        let mut c = tpch_catalog();
        let (ns, m_ns) = c.instantiate("nation", "ns");
        let (s, m_s) = c.instantiate("supplier", "s");
        let db = generate_database(0.001, 7, &[("nation", &ns, &m_ns), ("supplier", &s, &m_s)]);
        assert_eq!(25, db.get("ns").unwrap().len());
        assert_eq!(10, db.get("s").unwrap().len());
    }

    #[test]
    fn generation_is_deterministic() {
        let mut c = tpch_catalog();
        let (_, m) = c.instantiate("supplier", "s");
        let r1 = TpchGen::new(0.01, 5).generate("supplier", &m);
        let r2 = TpchGen::new(0.01, 5).generate("supplier", &m);
        assert!(r1.bag_eq(&r2));
    }
}
