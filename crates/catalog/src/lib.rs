//! # dpnext-catalog
//!
//! Schema catalogs with statistics (cardinalities, distinct counts, keys),
//! the TPC-H SF-1 metadata used by the paper's Table 2, and a synthetic,
//! scale-configurable TPC-H data generator for executing plans.

pub mod catalog;
pub mod tpch;

pub use catalog::{CatAttr, CatRelation, Catalog};
pub use tpch::{generate_database, tpch_catalog, TpchGen};
