//! A schema catalog: named relations with attributes, statistics and keys.

use dpnext_algebra::{AttrGen, AttrId};
use dpnext_query::QueryTable;
use std::collections::HashMap;

/// One attribute of a catalog relation.
#[derive(Debug, Clone)]
pub struct CatAttr {
    pub name: String,
    pub id: AttrId,
    /// Estimated distinct values.
    pub distinct: f64,
}

/// A catalog relation.
#[derive(Debug, Clone)]
pub struct CatRelation {
    pub name: String,
    pub card: f64,
    pub attrs: Vec<CatAttr>,
    /// Candidate keys (indices into `attrs`).
    pub keys: Vec<Vec<usize>>,
}

impl CatRelation {
    pub fn attr(&self, name: &str) -> &CatAttr {
        self.attrs
            .iter()
            .find(|a| a.name == name)
            .unwrap_or_else(|| panic!("no attribute {name} in {}", self.name))
    }
}

/// A catalog: relations plus a fresh-attribute allocator for query
/// instantiation.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    relations: Vec<CatRelation>,
    by_name: HashMap<String, usize>,
    next_attr: u32,
}

impl Catalog {
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Add a relation. `attrs` are `(name, distinct)`; `keys` are lists of
    /// attribute names.
    pub fn add_relation(
        &mut self,
        name: &str,
        card: f64,
        attrs: &[(&str, f64)],
        keys: &[&[&str]],
    ) -> usize {
        let mut cat_attrs = Vec::with_capacity(attrs.len());
        for (aname, distinct) in attrs {
            cat_attrs.push(CatAttr {
                name: (*aname).to_string(),
                id: AttrId(self.next_attr),
                distinct: *distinct,
            });
            self.next_attr += 1;
        }
        let keys = keys
            .iter()
            .map(|key| {
                key.iter()
                    .map(|kn| {
                        cat_attrs
                            .iter()
                            .position(|a| a.name == *kn)
                            .unwrap_or_else(|| panic!("key attribute {kn} missing in {name}"))
                    })
                    .collect()
            })
            .collect();
        let idx = self.relations.len();
        self.by_name.insert(name.to_string(), idx);
        self.relations.push(CatRelation {
            name: name.to_string(),
            card,
            attrs: cat_attrs,
            keys,
        });
        idx
    }

    pub fn relation(&self, name: &str) -> &CatRelation {
        let idx = *self
            .by_name
            .get(name)
            .unwrap_or_else(|| panic!("no relation {name} in catalog"));
        &self.relations[idx]
    }

    pub fn relations(&self) -> &[CatRelation] {
        &self.relations
    }

    /// First attribute id not used by the catalog (for query-level
    /// [`AttrGen`]s).
    pub fn attr_gen(&self) -> AttrGen {
        AttrGen::new(self.next_attr)
    }

    /// Instantiate a table occurrence for a query. Each call allocates
    /// fresh attribute ids (self-joins need distinct attributes per
    /// occurrence); returns the table plus the mapping from catalog
    /// attribute names to the occurrence's ids.
    ///
    /// This advances the catalog's own allocator, so consecutive queries
    /// built this way never share ids. Concurrent binders that only hold
    /// `&Catalog` use [`Catalog::instantiate_with`] with a query-local
    /// generator instead.
    pub fn instantiate(
        &mut self,
        rel_name: &str,
        alias: &str,
    ) -> (QueryTable, HashMap<String, AttrId>) {
        let mut gen = AttrGen::new(self.next_attr);
        let out = self.instantiate_with(&mut gen, rel_name, alias);
        self.next_attr = gen.peek();
        out
    }

    /// [`Catalog::instantiate`] against a shared catalog reference,
    /// allocating occurrence ids from a caller-owned [`AttrGen`] (seed it
    /// with [`Catalog::attr_gen`]).
    ///
    /// Because the catalog is not mutated, binding becomes a pure
    /// function of (catalog, query text): rebinding the same query
    /// against the same catalog yields bit-identical attribute ids —
    /// the property that lets a plan cache hand a cached plan to a
    /// freshly-bound request with the ids still lining up.
    pub fn instantiate_with(
        &self,
        gen: &mut AttrGen,
        rel_name: &str,
        alias: &str,
    ) -> (QueryTable, HashMap<String, AttrId>) {
        let rel = self.relation(rel_name);
        let mut mapping = HashMap::new();
        let mut attrs = Vec::with_capacity(rel.attrs.len());
        let mut distinct = Vec::with_capacity(rel.attrs.len());
        for a in &rel.attrs {
            let id = gen.fresh();
            mapping.insert(a.name.clone(), id);
            attrs.push(id);
            distinct.push(a.distinct);
        }
        let mut table = QueryTable::new(alias, attrs.clone(), rel.card).with_distinct(distinct);
        for key in &rel.keys {
            table = table.with_key(key.iter().map(|&i| attrs[i]).collect());
        }
        (table, mapping)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Catalog {
        let mut c = Catalog::new();
        c.add_relation(
            "nation",
            25.0,
            &[("n_nationkey", 25.0), ("n_name", 25.0)],
            &[&["n_nationkey"]],
        );
        c
    }

    #[test]
    fn lookup() {
        let c = sample();
        let n = c.relation("nation");
        assert_eq!(25.0, n.card);
        assert_eq!(25.0, n.attr("n_name").distinct);
        assert_eq!(vec![vec![0]], n.keys);
    }

    #[test]
    fn instantiation_allocates_fresh_attrs() {
        let mut c = sample();
        let (t1, m1) = c.instantiate("nation", "ns");
        let (t2, m2) = c.instantiate("nation", "nc");
        assert_ne!(m1["n_nationkey"], m2["n_nationkey"]);
        assert_eq!(1, t1.keys.len());
        assert_eq!(t1.card, t2.card);
        // Query-level generator starts above everything.
        let mut gen = c.attr_gen();
        let fresh = gen.fresh();
        assert!(t1.attrs.iter().chain(&t2.attrs).all(|&a| a != fresh));
    }

    #[test]
    #[should_panic(expected = "no relation")]
    fn missing_relation_panics() {
        sample().relation("zzz");
    }
}
