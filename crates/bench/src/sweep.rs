//! Sweep runner: optimize batches of random queries per relation count
//! with several algorithms and aggregate costs and runtimes, mirroring
//! the methodology of §5 (10 000 random trees per size in the paper; the
//! sample size here is configurable).

use dpnext::Optimizer;
use dpnext_core::{resolve_threads, Algorithm};
use dpnext_workload::{generate_query, GenConfig};
use std::time::Duration;

/// One algorithm with the largest query size it is allowed to attempt
/// (the paper stops EA-All at 8 and EA-Prune at 13 relations).
#[derive(Debug, Clone, Copy)]
pub struct AlgoSpec {
    pub algo: Algorithm,
    pub max_n: usize,
}

impl AlgoSpec {
    pub fn new(algo: Algorithm, max_n: usize) -> Self {
        AlgoSpec { algo, max_n }
    }
}

/// Aggregated measurements for one `(algorithm, n)` cell.
#[derive(Debug, Clone, Default)]
pub struct Cell {
    pub queries: usize,
    pub mean_cost: f64,
    pub mean_runtime: Duration,
    /// Geometric mean of per-query cost ratios against the reference
    /// algorithm (the first algorithm of the sweep); robust against the
    /// heavy-tailed outliers the paper reports.
    pub mean_rel_cost: f64,
    /// Arithmetic mean of the ratios (outlier sensitive).
    pub arith_rel_cost: f64,
    /// Largest per-query cost ratio observed (the paper's "extreme
    /// outliers").
    pub max_rel_cost: f64,
    pub mean_plans_built: f64,
    /// Mean memo arena size at the end (retained DP state plus evicted
    /// partial plans, which stay alive as children of later plans).
    pub mean_arena_plans: f64,
    /// Mean peak plan-class width.
    pub mean_peak_class_width: f64,
    /// Mean dominance-prune hit-rate (0 when the algorithm never prunes).
    pub mean_prune_hit_rate: f64,
    /// Mean nanoseconds in the plan-building phase (workers + inline
    /// strata; the whole enumeration on the streaming path).
    pub mean_worker_nanos: f64,
    /// Mean nanoseconds in the merge + per-class replay phase (0 on the
    /// streaming path).
    pub mean_replay_nanos: f64,
    /// Mean LPT partition imbalance of the class-partitioned replay:
    /// heaviest worker load as a percentage of a perfect split (100 =
    /// perfectly balanced, worst stratum per run; 0 when nothing
    /// replayed in parallel).
    pub mean_lpt_imbalance_x100: f64,
    /// Mean number of strata whose candidate bucketing ran fanned-out.
    pub mean_par_bucket_strata: f64,
}

/// Share of instrumented engine time in the merge + replay phase — the
/// Amdahl serial fraction of the layered engine, on (possibly averaged)
/// phase nanoseconds. The one definition every bench-side readout uses;
/// mirrors `MemoStats::serial_fraction` on the raw per-run counters.
pub fn serial_fraction(worker_nanos: f64, replay_nanos: f64) -> f64 {
    let total = worker_nanos + replay_nanos;
    if total <= 0.0 {
        return 0.0;
    }
    replay_nanos / total
}

impl Cell {
    /// [`serial_fraction`] over this cell's mean phase times.
    pub fn serial_fraction(&self) -> f64 {
        serial_fraction(self.mean_worker_nanos, self.mean_replay_nanos)
    }
}

/// Results of a sweep: `cells[algo_index][size_index]` (None where the
/// algorithm was size-capped).
pub struct SweepResult {
    pub sizes: Vec<usize>,
    pub algos: Vec<AlgoSpec>,
    pub cells: Vec<Vec<Option<Cell>>>,
}

/// Run the sweep. For every size, `queries` seeds are drawn; the same
/// query is fed to every algorithm. The *first* algorithm serves as the
/// reference for relative costs. `threads` is the enumeration-engine
/// fan-out (`1` = sequential streaming engine, `0` = all cores); results
/// are bit-identical across thread counts, only runtimes change.
pub fn run_sweep(
    sizes: &[usize],
    queries: usize,
    base_seed: u64,
    algos: &[AlgoSpec],
    gen_cfg: impl Fn(usize) -> GenConfig,
    threads: usize,
) -> SweepResult {
    let mut cells: Vec<Vec<Option<Cell>>> = vec![vec![None; sizes.len()]; algos.len()];
    for (si, &n) in sizes.iter().enumerate() {
        let cfg = gen_cfg(n);
        let mut costs: Vec<Vec<f64>> = vec![Vec::new(); algos.len()];
        let mut times: Vec<Duration> = vec![Duration::ZERO; algos.len()];
        let mut plans: Vec<f64> = vec![0.0; algos.len()];
        let mut arena: Vec<f64> = vec![0.0; algos.len()];
        let mut width: Vec<f64> = vec![0.0; algos.len()];
        let mut hits: Vec<f64> = vec![0.0; algos.len()];
        let mut worker_ns: Vec<f64> = vec![0.0; algos.len()];
        let mut replay_ns: Vec<f64> = vec![0.0; algos.len()];
        let mut lpt: Vec<f64> = vec![0.0; algos.len()];
        let mut par_strata: Vec<f64> = vec![0.0; algos.len()];
        for q in 0..queries {
            let seed = base_seed
                .wrapping_add(n as u64 * 1_000_003)
                .wrapping_add(q as u64 * 7_919);
            let query = generate_query(&cfg, seed);
            for (ai, spec) in algos.iter().enumerate() {
                if n > spec.max_n {
                    continue;
                }
                // EXPLAIN rendering off: sweeps time the search itself.
                let r = Optimizer::new(spec.algo)
                    .explain(false)
                    .threads(threads)
                    .optimize(&query);
                costs[ai].push(r.plan.cost);
                times[ai] += r.elapsed;
                plans[ai] += r.plans_built as f64;
                arena[ai] += r.memo.arena_plans as f64;
                width[ai] += r.memo.peak_class_width as f64;
                hits[ai] += r.memo.prune_hit_rate();
                worker_ns[ai] += r.memo.worker_nanos as f64;
                replay_ns[ai] += r.memo.replay_nanos as f64;
                lpt[ai] += r.memo.lpt_imbalance_x100 as f64;
                par_strata[ai] += r.memo.par_bucket_strata as f64;
            }
        }
        for (ai, spec) in algos.iter().enumerate() {
            if n > spec.max_n || costs[ai].is_empty() {
                continue;
            }
            let m = costs[ai].len();
            let mean_cost = costs[ai].iter().sum::<f64>() / m as f64;
            let (mut rel_sum, mut log_sum, mut rel_max) = (0.0f64, 0.0f64, 0.0f64);
            for (c, r) in costs[0].iter().zip(costs[ai].iter()) {
                // This algorithm's cost relative to the reference.
                let ratio = if *c > 0.0 { r / c } else { 1.0 };
                rel_sum += ratio;
                log_sum += ratio.max(1e-30).ln();
                rel_max = rel_max.max(ratio);
            }
            cells[ai][si] = Some(Cell {
                queries: m,
                mean_cost,
                mean_runtime: times[ai] / m as u32,
                mean_rel_cost: (log_sum / m as f64).exp(),
                arith_rel_cost: rel_sum / m as f64,
                max_rel_cost: rel_max,
                mean_plans_built: plans[ai] / m as f64,
                mean_arena_plans: arena[ai] / m as f64,
                mean_peak_class_width: width[ai] / m as f64,
                mean_prune_hit_rate: hits[ai] / m as f64,
                mean_worker_nanos: worker_ns[ai] / m as f64,
                mean_replay_nanos: replay_ns[ai] / m as f64,
                mean_lpt_imbalance_x100: lpt[ai] / m as f64,
                mean_par_bucket_strata: par_strata[ai] / m as f64,
            });
        }
    }
    SweepResult {
        sizes: sizes.to_vec(),
        algos: algos.to_vec(),
        cells,
    }
}

/// Render a column-aligned table with one row per size. `value` extracts
/// the printed quantity from a cell.
pub fn print_table(title: &str, result: &SweepResult, value: impl Fn(&Cell) -> String) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {title}\n"));
    out.push_str(&format!("{:>4}", "n"));
    for spec in &result.algos {
        out.push_str(&format!(" {:>16}", spec.algo.name()));
    }
    out.push('\n');
    for (si, n) in result.sizes.iter().enumerate() {
        out.push_str(&format!("{n:>4}"));
        for (ai, _) in result.algos.iter().enumerate() {
            match &result.cells[ai][si] {
                Some(cell) => out.push_str(&format!(" {:>16}", value(cell))),
                None => out.push_str(&format!(" {:>16}", "-")),
            }
        }
        out.push('\n');
    }
    out
}

/// Render the memo statistics of a sweep (arena size, peak class width,
/// prune hit-rate) as `arena/width/hit%` cells — the standard supplement
/// the figure binaries print after their headline table.
pub fn print_memo_table(result: &SweepResult) -> String {
    print_table(
        "Memo — mean arena plans / peak class width / prune hit-rate",
        result,
        |c| {
            format!(
                "{:.0}/{:.0}/{:.0}%",
                c.mean_arena_plans,
                c.mean_peak_class_width,
                100.0 * c.mean_prune_hit_rate
            )
        },
    )
}

/// Plans-per-second comparison of two sweeps of the same shape — the
/// standard "threads=1 vs threads=N" readout of the figure binaries.
/// Cells are `base → par (speedup×)`.
pub fn print_threads_compare(title: &str, base: &SweepResult, par: &SweepResult) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {title}\n"));
    out.push_str(&format!("{:>4}", "n"));
    for spec in &base.algos {
        out.push_str(&format!(" {:>28}", spec.algo.name()));
    }
    out.push('\n');
    let pps = |c: &Cell| c.mean_plans_built / c.mean_runtime.as_secs_f64().max(1e-12);
    for (si, n) in base.sizes.iter().enumerate() {
        out.push_str(&format!("{n:>4}"));
        for (ai, _) in base.algos.iter().enumerate() {
            match (&base.cells[ai][si], &par.cells[ai][si]) {
                (Some(b), Some(p)) => {
                    let (bp, pp) = (pps(b), pps(p));
                    out.push_str(&format!(
                        " {:>28}",
                        format!("{:.0}k → {:.0}k ({:.2}×)", bp / 1e3, pp / 1e3, pp / bp)
                    ));
                }
                _ => out.push_str(&format!(" {:>28}", "-")),
            }
        }
        out.push('\n');
    }
    out
}

/// If an explicit `--threads T > 1` was passed, rerun the sweep at
/// `threads = 1` and print the plans/s comparison against `result` —
/// opt-in, because the baseline sweep doubles the figure's runtime.
/// Results are bit-identical across thread counts; only plans/s moves.
pub fn maybe_print_threads_compare(
    figure: &str,
    args: &Args,
    algos: &[AlgoSpec],
    result: &SweepResult,
    gen_cfg: impl Fn(usize) -> GenConfig,
) {
    if args.threads <= 1 {
        return;
    }
    let threads = resolve_threads(args.threads);
    let seq = run_sweep(&args.sizes(), args.queries, args.seed, algos, gen_cfg, 1);
    println!(
        "{}",
        print_threads_compare(
            &format!("{figure} — plans/s, threads=1 → threads={threads}"),
            &seq,
            result,
        )
    );
    println!(
        "{}",
        print_table(
            &format!(
                "{figure} — replay serial fraction at threads={threads} \
                 (share of engine time in the merge+replay phase)"
            ),
            result,
            |c| format!("{:.1}%", 100.0 * c.serial_fraction()),
        )
    );
}

/// Tiny command-line parsing:
/// `--queries N --min N --max N --seed N --threads N`.
pub struct Args {
    pub queries: usize,
    pub min_n: usize,
    pub max_n: usize,
    pub seed: u64,
    /// Enumeration fan-out; `0` = all cores (the facade default).
    pub threads: usize,
}

impl Args {
    pub fn parse(default_queries: usize, default_min: usize, default_max: usize) -> Args {
        let mut args = Args {
            queries: default_queries,
            min_n: default_min,
            max_n: default_max,
            seed: 42,
            threads: 0,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let v = it
                .next()
                .unwrap_or_else(|| panic!("missing value for {flag}"));
            match flag.as_str() {
                "--queries" => args.queries = v.parse().expect("--queries"),
                "--min" => args.min_n = v.parse().expect("--min"),
                "--max" => args.max_n = v.parse().expect("--max"),
                "--seed" => args.seed = v.parse().expect("--seed"),
                "--threads" => args.threads = v.parse().expect("--threads"),
                other => panic!(
                    "unknown flag {other} (supported: --queries --min --max --seed --threads)"
                ),
            }
        }
        args
    }

    pub fn sizes(&self) -> Vec<usize> {
        (self.min_n..=self.max_n).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_runs_and_aggregates() {
        let algos = [
            AlgoSpec::new(Algorithm::DPhyp, 20),
            AlgoSpec::new(Algorithm::H1, 20),
            AlgoSpec::new(Algorithm::EaPrune, 5),
        ];
        let r = run_sweep(&[3, 6], 4, 7, &algos, GenConfig::paper, 1);
        assert_eq!(2, r.sizes.len());
        // EA-Prune capped at 5: missing for n = 6.
        assert!(r.cells[2][0].is_some());
        assert!(r.cells[2][1].is_none());
        let c = r.cells[1][0].as_ref().unwrap();
        assert_eq!(4, c.queries);
        // H1 explores a superset of the baseline's trees; on average it
        // lands at or below the baseline (individual queries may regress —
        // that is the Bellman violation of §4.4).
        assert!(c.mean_rel_cost <= 2.0, "rel = {}", c.mean_rel_cost);
        let table = print_table("t", &r, |c| format!("{:.3}", c.mean_rel_cost));
        assert!(table.contains("DPhyp"));
        assert!(table.contains('-'));
    }

    #[test]
    fn sweep_results_identical_across_thread_counts() {
        let algos = [
            AlgoSpec::new(Algorithm::EaPrune, 6),
            AlgoSpec::new(Algorithm::DPhyp, 6),
        ];
        let seq = run_sweep(&[5, 6], 3, 42, &algos, GenConfig::paper, 1);
        let par = run_sweep(&[5, 6], 3, 42, &algos, GenConfig::paper, 4);
        for ai in 0..algos.len() {
            for si in 0..2 {
                let (s, p) = (
                    seq.cells[ai][si].as_ref().unwrap(),
                    par.cells[ai][si].as_ref().unwrap(),
                );
                assert_eq!(s.mean_cost.to_bits(), p.mean_cost.to_bits());
                assert_eq!(s.mean_plans_built, p.mean_plans_built);
            }
        }
        let table = print_threads_compare("1 vs 4", &seq, &par);
        assert!(table.contains('×'));
    }
}
