//! # dpnext-bench
//!
//! The experiment harness regenerating the paper's evaluation (§5):
//! one binary per figure/table (`fig15` … `fig18`, `table1`, `table2`,
//! `intro_query`) plus Criterion microbenchmarks. See EXPERIMENTS.md for
//! the recorded paper-vs-measured comparison.

pub mod sweep;

pub use sweep::{
    maybe_print_threads_compare, print_memo_table, print_table, print_threads_compare, run_sweep,
    serial_fraction, AlgoSpec, Args, Cell, SweepResult,
};
