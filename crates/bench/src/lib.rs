//! # dpnext-bench
//!
//! The experiment harness regenerating the paper's evaluation (§5):
//! one binary per figure/table (`fig15` … `fig18`, `table1`, `table2`,
//! `intro_query`) plus Criterion microbenchmarks. See EXPERIMENTS.md for
//! the recorded paper-vs-measured comparison.

pub mod sweep;

pub use sweep::{print_memo_table, print_table, run_sweep, AlgoSpec, Args, Cell, SweepResult};
