//! Figure 18: runtime of H2 relative to H1 (around 1.0; H2 is often
//! slightly faster because eager plans expose key constraints that make
//! the top grouping obsolete, §5.3).
//!
//! Usage: `fig18 [--queries N] [--min N] [--max N] [--seed S] [--threads T]`.
//! With an explicit `--threads T > 1` the sweep additionally runs at
//! `threads=1` and reports the plans/s speedup per cell (results are
//! bit-identical).

use dpnext_bench::{maybe_print_threads_compare, print_memo_table, run_sweep, AlgoSpec, Args};
use dpnext_core::Algorithm;
use dpnext_workload::GenConfig;

fn main() {
    let args = Args::parse(30, 3, 16);
    let algos = [
        AlgoSpec::new(Algorithm::H1, args.max_n),
        AlgoSpec::new(Algorithm::H2(1.03), args.max_n),
    ];
    let result = run_sweep(
        &args.sizes(),
        args.queries,
        args.seed,
        &algos,
        GenConfig::paper,
        args.threads,
    );
    println!("# Fig. 18 — runtime of H1 and H2 (F = 1.03), and their ratio");
    println!(
        "{:>4} {:>14} {:>14} {:>10}",
        "n", "H1 [µs]", "H2 [µs]", "H2/H1"
    );
    for (si, n) in result.sizes.iter().enumerate() {
        let h1 = result.cells[0][si].as_ref().unwrap();
        let h2 = result.cells[1][si].as_ref().unwrap();
        let t1 = h1.mean_runtime.as_secs_f64() * 1e6;
        let t2 = h2.mean_runtime.as_secs_f64() * 1e6;
        println!("{n:>4} {t1:>14.1} {t2:>14.1} {:>10.3}", t2 / t1);
    }
    println!();
    println!("{}", print_memo_table(&result));

    maybe_print_threads_compare("Fig. 18", &args, &algos, &result, GenConfig::paper);
}
