//! Figure 15: average plan cost of DPhyp relative to EA-Prune/EA-All
//! (the gain of eager aggregation), over random operator trees.
//!
//! Usage: `fig15 [--queries N] [--min N] [--max N] [--seed S] [--threads T]`.
//! Paper setting: 10 000 queries per size, sizes 3..13. Defaults are
//! laptop-friendly; pass larger values to tighten the averages. With
//! an explicit `--threads T > 1` the sweep additionally runs at
//! `threads=1` and reports the plans/s speedup per cell (results are
//! bit-identical).

use dpnext_bench::{
    maybe_print_threads_compare, print_memo_table, print_table, run_sweep, AlgoSpec, Args,
};
use dpnext_core::Algorithm;
use dpnext_workload::GenConfig;

fn main() {
    let args = Args::parse(50, 3, 10);
    let algos = [
        AlgoSpec::new(Algorithm::EaPrune, args.max_n), // reference = optimum
        AlgoSpec::new(Algorithm::DPhyp, args.max_n),
    ];
    let result = run_sweep(
        &args.sizes(),
        args.queries,
        args.seed,
        &algos,
        GenConfig::paper,
        args.threads,
    );
    println!(
        "{}",
        print_table(
            "Fig. 15 — plan cost relative to EA-Prune (= EA-All), geometric mean",
            &result,
            |c| format!("{:.2}", c.mean_rel_cost),
        )
    );
    println!(
        "{}",
        print_table(
            "Fig. 15 — plan cost relative to EA-Prune, arithmetic mean (the paper's curve)",
            &result,
            |c| format!("{:.2}", c.arith_rel_cost),
        )
    );
    println!(
        "{}",
        print_table(
            "Fig. 15 (outliers) — worst per-query ratio vs EA-Prune",
            &result,
            |c| { format!("{:.0}", c.max_rel_cost) }
        )
    );
    println!("{}", print_memo_table(&result));

    maybe_print_threads_compare("Fig. 15", &args, &algos, &result, GenConfig::paper);
}
