//! Overload smoke: the CI gate for the resource-governance guarantees.
//!
//! Two parts, both loud failures (non-zero exit) when a guarantee breaks:
//!
//! * **Part A — burst admission.** A 200-request synchronized burst at a
//!   concurrency cap of 4 (plus a bounded wait queue) with injected
//!   memory-pressure faults: every request must resolve as an admitted
//!   success or a fast `Overloaded` rejection (nothing lost, nothing
//!   hung), the wait queue must never grow past its bound, the global
//!   byte ledger must stay under its cap, and no panic may escape.
//! * **Part B — breaker recovery.** A shape is driven into its circuit
//!   breaker by windowed memory-pressure faults, served from the greedy
//!   rung while open, and must close again via a half-open probe once
//!   the faults stop — a breaker that never closes starves the shape of
//!   full-quality plans forever.
//!
//! Run under `timeout 120` in CI: a hang is a failure too.

use dpnext::Optimizer;
use dpnext_core::Algorithm;
use dpnext_serve::{
    BurstSchedule, Fault, FaultInjector, OptimizerService, ServeError, ServiceConfig,
};
use dpnext_workload::{generate_query, GenConfig, Topology};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

const BURST_REQUESTS: usize = 200;
const BURST_CONCURRENT: usize = 4;
const BURST_QUEUED: usize = 4;
/// Generous global cap: 8 registered memos (4 checked out + 4 parked) of
/// n≤9 arenas peak well under it, so a breach can only mean the
/// accounting leaked — a release path that stopped subtracting compounds
/// over 200 requests and blows straight past this bound.
const BURST_LEDGER_CAP: u64 = 256 << 20;
const PRESSURE_PER_MILLION: u32 = 300_000;
const PRESSURE_BUDGET: u64 = 64 << 10;

const BREAKER_THRESHOLD: u32 = 2;
const BREAKER_COOLDOWN: Duration = Duration::from_millis(20);

fn main() {
    burst_part();
    breaker_part();
    println!("OVERLOAD_OK");
}

fn quiet_optimizer() -> Optimizer {
    Optimizer::new(Algorithm::EaPrune).threads(1).explain(false)
}

/// Part A: bounded admission and ledger accounting under a synchronized
/// fault-laden burst.
fn burst_part() {
    let inj = FaultInjector::new(0xCAFE, 0, 0, Duration::ZERO)
        .with_memory_pressure(PRESSURE_PER_MILLION, PRESSURE_BUDGET);
    let service = Arc::new(
        OptimizerService::with_config(
            quiet_optimizer(),
            ServiceConfig {
                cache_capacity: 0, // every request must reach the gate
                pool_capacity: 4,
                max_concurrent: BURST_CONCURRENT,
                max_queued: BURST_QUEUED,
                memory_cap_bytes: BURST_LEDGER_CAP,
                ..ServiceConfig::default()
            },
        )
        .with_fault_injection(inj),
    );
    // Four synchronized waves: the arrival schedule is pure arithmetic
    // (`BurstSchedule`), so the burst shape is pinned, not left to the
    // thread scheduler.
    let sched = BurstSchedule::new(50, Duration::from_millis(30));
    let waves = 1 + sched.burst_of((BURST_REQUESTS - 1) as u64) as usize;
    let barrier = Arc::new(Barrier::new(BURST_REQUESTS));
    let start = Instant::now();
    let handles: Vec<_> = (0..BURST_REQUESTS)
        .map(|i| {
            let service = service.clone();
            let barrier = barrier.clone();
            let offset = sched.arrival_offset(i as u64);
            std::thread::spawn(move || {
                let topo = [Topology::Chain, Topology::Star, Topology::Clique][i % 3];
                let q = generate_query(&GenConfig::topology(6 + i % 4, topo), i as u64);
                barrier.wait();
                std::thread::sleep(offset.saturating_sub(start.elapsed()));
                match service.optimize(&q) {
                    Ok(r) => {
                        assert!(
                            r.result.plan.cost.is_finite(),
                            "request {i}: served a non-finite plan cost"
                        );
                        (1u64, 0u64)
                    }
                    Err(ServeError::Overloaded { retry_after_hint }) => {
                        assert!(
                            retry_after_hint > Duration::ZERO,
                            "request {i}: rejection must carry a retry hint"
                        );
                        (0, 1)
                    }
                    Err(e) => panic!("request {i}: unexpected error kind: {e}"),
                }
            })
        })
        .collect();
    let (mut ok, mut rejected) = (0u64, 0u64);
    for h in handles {
        // An escaping panic surfaces here as a failed join — the hardest
        // possible failure, and exactly what this gate must catch.
        let (o, r) = h.join().expect("no panic may escape a service request");
        ok += o;
        rejected += r;
    }
    let elapsed = start.elapsed();

    assert_eq!(
        BURST_REQUESTS as u64,
        ok + rejected,
        "every burst request must resolve as a success or a fast rejection"
    );
    let stats = service.stats();
    assert_eq!(0, stats.panics, "no faults of the panic kind were injected");
    assert_eq!(rejected, stats.gate.rejected);
    assert_eq!(ok, stats.gate.admitted);
    assert!(
        stats.gate.queued_peak <= BURST_QUEUED as u64,
        "wait queue grew past its bound: {} > {BURST_QUEUED}",
        stats.gate.queued_peak
    );
    assert!(
        stats.ledger.peak <= BURST_LEDGER_CAP,
        "ledger peak {} breached the {BURST_LEDGER_CAP}-byte cap",
        stats.ledger.peak
    );
    assert!(
        stats.memory_degraded > 0,
        "the seeded pressure faults must degrade someone (got none in \
         {ok} admitted requests)"
    );
    println!(
        "burst: {BURST_REQUESTS} requests ({waves} waves) in {elapsed:?}: {ok} served, \
         {rejected} rejected fast, queue peak {}, {} memory-degraded, \
         ledger peak {} / cap {BURST_LEDGER_CAP}",
        stats.gate.queued_peak, stats.memory_degraded, stats.ledger.peak
    );
}

/// Part B: the circuit breaker trips under windowed pressure faults and
/// — the recovery guarantee — closes again once the faults stop.
fn breaker_part() {
    // Requests 0..THRESHOLD run under a 1-byte injected budget: each one
    // memory-aborts, so exactly THRESHOLD failures trip the breaker.
    let inj = FaultInjector::new(0, 0, 0, Duration::ZERO)
        .with_memory_pressure(1_000_000, 1)
        .with_window(0, BREAKER_THRESHOLD as u64);
    assert!(
        (0..BREAKER_THRESHOLD as u64).all(|i| inj.fault_for(i) == Fault::MemoryPressure),
        "the window must pressure every tripping request"
    );
    let service = OptimizerService::with_config(
        quiet_optimizer(),
        ServiceConfig {
            cache_capacity: 0, // every arrival must consult the breaker
            pool_capacity: 4,
            breaker_threshold: BREAKER_THRESHOLD,
            breaker_cooldown: BREAKER_COOLDOWN,
            ..ServiceConfig::default()
        },
    )
    .with_fault_injection(inj);
    let q = generate_query(&GenConfig::paper(6), 7);

    for i in 0..BREAKER_THRESHOLD as u64 {
        let r = service
            .optimize(&q)
            .unwrap_or_else(|e| panic!("pressured request {i} must degrade, not fail: {e}"));
        assert!(r.result.plan.cost.is_finite());
    }
    let stats = service.stats();
    assert_eq!(
        1, stats.breaker.trips,
        "{BREAKER_THRESHOLD} consecutive memory aborts must trip the breaker"
    );

    // Open: the shape is served from the greedy rung, not failed.
    let r = service.optimize(&q).expect("open serving must not error");
    assert!(r.result.plan.cost.is_finite());
    assert!(
        service.stats().breaker.open_served >= 1,
        "a tripped shape must be served from the greedy rung"
    );

    // Faults are over (the window passed); after the cooldown the next
    // arrival probes at full quality and must close the breaker.
    let recovery_deadline = Instant::now() + Duration::from_secs(10);
    loop {
        std::thread::sleep(BREAKER_COOLDOWN + Duration::from_millis(5));
        service
            .optimize(&q)
            .expect("post-window requests run clean");
        let b = service.stats().breaker;
        if b.closes >= 1 && b.open_shapes == 0 {
            break;
        }
        assert!(
            Instant::now() < recovery_deadline,
            "breaker never closed after the faults stopped: {b:?}"
        );
    }
    let stats = service.stats();
    println!(
        "breaker: tripped after {BREAKER_THRESHOLD} memory aborts, {} open-served, \
         {} probes, closed again ({} closes, {} open shapes remain)",
        stats.breaker.open_served,
        stats.breaker.probes,
        stats.breaker.closes,
        stats.breaker.open_shapes
    );
}
