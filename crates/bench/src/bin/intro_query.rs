//! The introduction's motivating experiment: execute the query *Ex* with
//! the canonical plan (grouping above the outerjoin barrier) and with the
//! eager-aggregation plan, on synthetic TPC-H data, and report wall-clock
//! times and measured `C_out`. This substitutes our algebra interpreter
//! for the paper's HyPer run (2140 ms → 1.51 ms there); the *ratio* is
//! the reproduced quantity.
//!
//! Usage: `intro_query [scale]` (default 0.02 = 200 suppliers,
//! 3 000 customers).

use dpnext::{Algorithm, Optimizer};
use dpnext_workload::ex_query;
use std::time::Instant;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.02);
    let ex = ex_query();
    let db = ex.database(scale, 4242);

    println!("# Intro query Ex at TPC-H scale {scale}");
    for (name, plan) in [
        (
            "canonical (DPhyp)",
            Optimizer::new(Algorithm::DPhyp).optimize(&ex.query).plan,
        ),
        (
            "eager (EA-Prune)",
            Optimizer::new(Algorithm::EaPrune).optimize(&ex.query).plan,
        ),
    ] {
        let start = Instant::now();
        let (res, cout) = plan.root.eval_counting(&db);
        let elapsed = start.elapsed();
        println!(
            "{name:<20} time = {:>10.3} ms   measured C_out = {cout:>10}   rows = {}",
            elapsed.as_secs_f64() * 1e3,
            res.len()
        );
    }

    let canonical = Optimizer::new(Algorithm::DPhyp).optimize(&ex.query);
    let eager = Optimizer::new(Algorithm::EaPrune).optimize(&ex.query);
    println!(
        "\nestimated C_out: canonical = {:.0}, eager = {:.0}, ratio = {:.0}x",
        canonical.plan.cost,
        eager.plan.cost,
        canonical.plan.cost / eager.plan.cost
    );
    println!("\neager plan:\n{}", eager.plan.root);
}
