//! Robustness smoke: the CI gate for the hardened serving guarantees.
//!
//! Two parts, both loud failures (non-zero exit) when a guarantee breaks:
//!
//! * **Part A — deadlines.** 30-relation chain/star/clique queries under
//!   tight wall-clock deadlines: every run must return a
//!   `validate_complete_plan`-clean plan, overshoot the deadline by at
//!   most `2 × SLACK`, and record a deadline abort whenever the clock
//!   (not the plan counter) cut the enumeration short.
//! * **Part B — fault hammer.** N service requests with K seeded faults
//!   (panics + slow enumerations) under a per-request deadline: exactly
//!   N − K(panic) requests succeed, every panic is contained and its
//!   memo quarantined, the pool never re-issues poisoned state, and no
//!   panic escapes the service (an escape kills the process — the
//!   hardest possible failure).
//!
//! Run under `timeout 120` in CI: a hang is a failure too.

use dpnext::adaptive::optimize_adaptive_run;
use dpnext::Optimizer;
use dpnext_core::{validate_complete_plan, Algorithm, OptimizeOptions};
use dpnext_serve::{Fault, FaultInjector, OptimizerService, ServeError, ServiceConfig};
use dpnext_workload::{generate_query, GenConfig, Topology};
use std::time::{Duration, Instant};

const DEADLINE_N: usize = 30;
const DEADLINES_MS: [u64; 2] = [10, 50];
/// Overshoot allowance per deadlined run: covers one enumeration work
/// unit plus finalize/stats on the plans built so far. The gate fails at
/// `deadline + 2 × SLACK`.
const SLACK: Duration = Duration::from_millis(100);

const HAMMER_REQUESTS: u64 = 200;
const HAMMER_PANIC_PER_MILLION: u32 = 150_000;
const HAMMER_SLOW_PER_MILLION: u32 = 50_000;
const HAMMER_UNIT_DELAY: Duration = Duration::from_micros(50);
const HAMMER_DEADLINE: Duration = Duration::from_millis(25);

fn main() {
    // Injected panics are expected traffic; everything else must stay
    // loud. (Even a silenced escaped panic still aborts the process —
    // the hook only controls the message, not the unwinding.)
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|m| m.contains("injected fault"));
        if !injected {
            prev(info);
        }
    }));

    deadline_part();
    hammer_part();
    println!("ROBUSTNESS_OK");
}

/// Part A: graceful degradation under wall-clock deadlines.
fn deadline_part() {
    for (topo, tag) in [
        (Topology::Chain, "chain"),
        (Topology::Star, "star"),
        (Topology::Clique, "clique"),
    ] {
        for deadline_ms in DEADLINES_MS {
            let deadline = Duration::from_millis(deadline_ms);
            let q = generate_query(&GenConfig::topology(DEADLINE_N, topo), 2);
            let opts = OptimizeOptions {
                explain: false,
                threads: 1,
                deadline: Some(deadline),
                ..OptimizeOptions::default()
            };
            let start = Instant::now();
            let run = optimize_adaptive_run(&q, &opts);
            let elapsed = start.elapsed();
            validate_complete_plan(&run.ctx, &run.memo, run.winner)
                .unwrap_or_else(|e| panic!("deadlined {tag} plan is structurally invalid: {e}"));
            let overshoot = elapsed.saturating_sub(deadline);
            assert!(
                overshoot <= 2 * SLACK,
                "{tag} n={DEADLINE_N} deadline={deadline_ms}ms: overshoot {overshoot:?} \
                 exceeds 2x slack ({:?})",
                2 * SLACK
            );
            let stats = run.optimized.memo;
            if topo == Topology::Star {
                // The expressible worst case (#ccp = 29*2^28) can never
                // finish its exact rung inside these deadlines: the clock
                // must be the recorded cause.
                assert!(
                    stats.degradation.deadline_aborted,
                    "{tag} n={DEADLINE_N} deadline={deadline_ms}ms: \
                     expected a deadline abort, got {}",
                    stats.degradation
                );
            }
            println!(
                "deadline {tag:<7} n={DEADLINE_N} deadline={deadline_ms:>3}ms: \
                 elapsed={elapsed:?} overshoot={overshoot:?} mode={} degraded={}",
                stats.adaptive_mode, stats.degradation
            );
        }
    }
}

/// Part B: panic isolation and memo quarantine under a seeded fault
/// schedule, with a service deadline keeping slow faults bounded.
fn hammer_part() {
    let inj = FaultInjector::new(
        0xD15EA5E,
        HAMMER_PANIC_PER_MILLION,
        HAMMER_SLOW_PER_MILLION,
        HAMMER_UNIT_DELAY,
    );
    let schedule: Vec<Fault> = (0..HAMMER_REQUESTS).map(|i| inj.fault_for(i)).collect();
    let expected_panics = schedule.iter().filter(|f| **f == Fault::Panic).count() as u64;
    let expected_slow = schedule.iter().filter(|f| **f == Fault::Slow).count() as u64;
    assert!(
        expected_panics > 0 && expected_slow > 0,
        "seed must schedule both fault kinds (got {expected_panics} panics, \
         {expected_slow} slow)"
    );

    let service = OptimizerService::with_config(
        Optimizer::new(Algorithm::EaPrune).threads(1).explain(false),
        ServiceConfig {
            cache_capacity: 0, // every request must actually run (and may fault)
            pool_capacity: 4,
            deadline: Some(HAMMER_DEADLINE),
            ..ServiceConfig::default()
        },
    )
    .with_fault_injection(inj);

    let (mut ok, mut panicked, mut degraded) = (0u64, 0u64, 0u64);
    let start = Instant::now();
    for i in 0..HAMMER_REQUESTS {
        // 6-10 relations over mixed topologies: small enough to finish
        // clean runs fast, big enough that a slow fault hits the ladder.
        let topo = [Topology::Chain, Topology::Star, Topology::Mixed][(i % 3) as usize];
        let q = generate_query(&GenConfig::topology(6 + (i as usize % 5), topo), i);
        match service.optimize(&q) {
            Ok(r) => {
                ok += 1;
                assert!(
                    r.result.plan.cost.is_finite(),
                    "request {i}: served a non-finite plan cost"
                );
                degraded += r.result.memo.degradation.deadline_aborted as u64;
            }
            Err(ServeError::Panicked(msg)) => {
                panicked += 1;
                assert!(
                    msg.contains("injected fault"),
                    "request {i}: unexpected panic escaped into the error: {msg}"
                );
            }
            Err(e) => panic!("request {i}: unexpected error kind: {e}"),
        }
    }
    let elapsed = start.elapsed();

    assert_eq!(
        HAMMER_REQUESTS - expected_panics,
        ok,
        "every non-panicking request must succeed"
    );
    assert_eq!(expected_panics, panicked);
    let stats = service.stats();
    assert_eq!(expected_panics, stats.panics);
    assert_eq!(
        expected_panics, stats.pool.quarantined,
        "every memo live during a panic must be quarantined"
    );
    assert_eq!(
        0, stats.pool.rejected_invalid,
        "clean runs must never park an invalid memo"
    );
    assert_eq!(
        HAMMER_REQUESTS,
        stats.pool.created + stats.pool.reused,
        "one checkout per request"
    );
    assert!(
        stats.pool.created <= expected_panics + 1,
        "pool re-created more memos ({}) than quarantines + warmup ({})",
        stats.pool.created,
        expected_panics + 1
    );
    println!(
        "hammer: {HAMMER_REQUESTS} requests in {elapsed:?}, {ok} ok \
         ({degraded} deadline-degraded), {panicked} isolated panics, \
         {} quarantined memos, {} pool creates",
        stats.pool.quarantined, stats.pool.created
    );
}
