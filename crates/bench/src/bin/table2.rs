//! Table 2: optimization time and relative plan cost of EA(-Prune), H1,
//! H2 and DPhyp on the TPC-H queries Ex, Q3, Q5 and Q10 (SF-1 statistics).

use dpnext::{Algorithm, Optimized, Optimizer};
use dpnext_workload::table2_queries;

fn run(q: &dpnext_workload::TpchQuery, algo: Algorithm, reps: u32) -> (Optimized, f64) {
    // Median-of-N timing: optimization is microseconds-fast, so repeat.
    let mut best: Option<Optimized> = None;
    let mut times = Vec::with_capacity(reps as usize);
    for _ in 0..reps {
        let r = Optimizer::new(algo).explain(false).optimize(&q.query);
        times.push(r.elapsed.as_secs_f64() * 1e3);
        best = Some(r);
    }
    times.sort_by(f64::total_cmp);
    (best.unwrap(), times[times.len() / 2])
}

fn main() {
    let reps: u32 = std::env::args()
        .nth(2)
        .and_then(|v| v.parse().ok())
        .unwrap_or(11);
    let queries = table2_queries();
    println!("# Table 2 — TPC-H optimization time [ms] and cost relative to DPhyp");
    println!(
        "{:<22} {:>10} {:>10} {:>10} {:>10}",
        "metric", "Ex", "Q3", "Q5", "Q10"
    );

    let mut rows: Vec<(String, Vec<f64>)> = vec![
        ("Time EA [ms]".into(), vec![]),
        ("Time H1 [ms]".into(), vec![]),
        ("Time H2 [ms]".into(), vec![]),
        ("Time DPhyp [ms]".into(), vec![]),
        ("Rel. Time EA/DPhyp".into(), vec![]),
        ("Rel. Time H1/DPhyp".into(), vec![]),
        ("Rel. Time H2/DPhyp".into(), vec![]),
        ("Rel. Cost EA/DPhyp".into(), vec![]),
        ("Rel. Cost H1/DPhyp".into(), vec![]),
        ("Rel. Cost H2/DPhyp".into(), vec![]),
    ];

    for q in &queries {
        let (ea, t_ea) = run(q, Algorithm::EaPrune, reps);
        let (h1, t_h1) = run(q, Algorithm::H1, reps);
        let (h2, t_h2) = run(q, Algorithm::H2(1.03), reps);
        let (dp, t_dp) = run(q, Algorithm::DPhyp, reps);
        rows[0].1.push(t_ea);
        rows[1].1.push(t_h1);
        rows[2].1.push(t_h2);
        rows[3].1.push(t_dp);
        rows[4].1.push(t_ea / t_dp);
        rows[5].1.push(t_h1 / t_dp);
        rows[6].1.push(t_h2 / t_dp);
        rows[7].1.push(ea.plan.cost / dp.plan.cost);
        rows[8].1.push(h1.plan.cost / dp.plan.cost);
        rows[9].1.push(h2.plan.cost / dp.plan.cost);
    }

    for (label, vals) in rows {
        print!("{label:<22}");
        for v in vals {
            if v >= 0.01 {
                print!(" {v:>10.3}");
            } else {
                print!(" {v:>10.2e}");
            }
        }
        println!();
    }
}
