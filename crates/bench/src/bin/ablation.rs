//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **Dominance criteria** (§4.6): full (cost + card + keys) vs
//!    cost+card vs cost-only pruning — how much optimality each weaker
//!    criterion sacrifices, and how much table size it saves.
//! 2. **Groupjoin fusion** (§A.5.1): how often the post-pass fires on
//!    optimized plans and what it does to plan size.
//!
//! Usage: `ablation [--queries N] [--min N] [--max N] [--seed S]`.

use dpnext::{Algorithm, DominanceKind, Optimizer};
use dpnext_bench::Args;
use dpnext_core::fuse_groupjoins;
use dpnext_workload::{generate_query, GenConfig};

fn main() {
    let args = Args::parse(40, 3, 7);

    println!("# Ablation 1 — dominance criteria vs optimality (reference: EA-All)");
    println!(
        "{:>4} {:>22} {:>22} {:>22}",
        "n", "full (paper)", "cost+card", "cost-only"
    );
    println!(
        "{:>4} {:>11}{:>11} {:>11}{:>11} {:>11}{:>11}",
        "", "subopt%", "plans", "subopt%", "plans", "subopt%", "plans"
    );
    for n in args.min_n..=args.max_n {
        let cfg = GenConfig::paper(n);
        let mut subopt = [0usize; 3];
        let mut plans = [0u64; 3];
        for q in 0..args.queries {
            let seed = args.seed + (n * 1000 + q) as u64;
            let query = generate_query(&cfg, seed);
            let best = Optimizer::new(Algorithm::EaAll)
                .explain(false)
                .optimize(&query)
                .plan
                .cost;
            for (i, kind) in [
                DominanceKind::Full,
                DominanceKind::CostCard,
                DominanceKind::CostOnly,
            ]
            .into_iter()
            .enumerate()
            {
                let r = Optimizer::new(Algorithm::EaPrune)
                    .dominance(kind)
                    .explain(false)
                    .optimize(&query);
                if r.plan.cost > best * (1.0 + 1e-9) {
                    subopt[i] += 1;
                }
                plans[i] += r.retained_plans;
            }
        }
        print!("{n:>4}");
        for i in 0..3 {
            print!(
                " {:>10.1}%{:>11}",
                100.0 * subopt[i] as f64 / args.queries as f64,
                plans[i] / args.queries as u64
            );
        }
        println!();
    }

    println!("\n# Ablation 2 — groupjoin fusion on optimized plans (EA-Prune)");
    println!(
        "{:>4} {:>10} {:>14} {:>16}",
        "n", "fusions", "plans w/ Z", "Γ removed [%]"
    );
    for n in args.min_n..=args.max_n + 3 {
        let cfg = GenConfig::paper(n);
        let (mut fusions, mut with_z, mut groupings, mut removed) =
            (0usize, 0usize, 0usize, 0usize);
        for q in 0..args.queries {
            let seed = args.seed + (n * 2000 + q) as u64;
            let query = generate_query(&cfg, seed);
            // Heuristics scale to all n; EXPLAIN is never read here.
            let opt = Optimizer::new(Algorithm::H1)
                .explain(false)
                .optimize(&query);
            let (_, k) = fuse_groupjoins(&opt.plan.root);
            fusions += k;
            with_z += usize::from(k > 0);
            groupings += opt.plan.root.grouping_count();
            removed += k;
        }
        println!(
            "{n:>4} {fusions:>10} {:>13}% {:>15.1}%",
            100 * with_z / args.queries,
            100.0 * removed as f64 / groupings.max(1) as f64
        );
    }
}
