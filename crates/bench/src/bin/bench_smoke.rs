//! Bench smoke: one tiny fig15 configuration, emitted as machine-readable
//! JSON so CI can archive a perf trajectory across PRs.
//!
//! Usage: `bench_smoke [--out PATH]` (default `BENCH_smoke.json`).
//! Runs EA-Prune and DPhyp through the same `run_sweep` harness as the
//! figure binaries (identical seed schedule) and records plans/sec, mean
//! runtime and memo statistics per `(algorithm, n)` cell.

use dpnext_bench::{run_sweep, AlgoSpec};
use dpnext_core::Algorithm;
use dpnext_workload::GenConfig;
use std::fmt::Write as _;

fn main() {
    let mut out_path = "BENCH_smoke.json".to_string();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--out" => out_path = it.next().expect("missing value for --out"),
            other => panic!("unknown flag {other} (supported: --out PATH)"),
        }
    }

    let sizes = [3usize, 4, 5, 6];
    let queries = 20;
    let seed = 42u64;
    let algos = [
        AlgoSpec::new(Algorithm::EaPrune, *sizes.last().unwrap()),
        AlgoSpec::new(Algorithm::DPhyp, *sizes.last().unwrap()),
    ];
    let result = run_sweep(&sizes, queries, seed, &algos, GenConfig::paper);

    let mut json = String::from("{\n  \"workload\": \"fig15-smoke\",\n");
    let _ = writeln!(json, "  \"sizes\": {sizes:?},");
    let _ = writeln!(json, "  \"queries_per_size\": {queries},");
    let _ = writeln!(json, "  \"seed\": {seed},");
    json.push_str("  \"cells\": [\n");
    let mut first = true;
    for (ai, spec) in result.algos.iter().enumerate() {
        for (si, n) in result.sizes.iter().enumerate() {
            let Some(cell) = &result.cells[ai][si] else {
                continue;
            };
            if !first {
                json.push_str(",\n");
            }
            first = false;
            let runtime_s = cell.mean_runtime.as_secs_f64();
            let _ = write!(
                json,
                "    {{ \"algorithm\": \"{}\", \"n\": {n}, \"queries\": {}, \
                 \"mean_runtime_us\": {:.3}, \"mean_plans_built\": {:.1}, \
                 \"plans_per_sec\": {:.0}, \"mean_arena_plans\": {:.1}, \
                 \"mean_peak_class_width\": {:.1}, \"mean_prune_hit_rate\": {:.4} }}",
                spec.algo.name(),
                cell.queries,
                runtime_s * 1e6,
                cell.mean_plans_built,
                cell.mean_plans_built / runtime_s.max(1e-12),
                cell.mean_arena_plans,
                cell.mean_peak_class_width,
                cell.mean_prune_hit_rate
            );
        }
    }
    json.push_str("\n  ]\n}\n");

    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!("{json}");
    eprintln!("wrote {out_path}");
}
