//! Bench smoke: one tiny fig15 configuration, emitted as machine-readable
//! JSON so CI can archive a perf trajectory across PRs.
//!
//! Usage: `bench_smoke [--out PATH] [--diff PREV_PATH]`.
//! Runs EA-Prune, EA-All and DPhyp through the same `run_sweep` harness as
//! the figure binaries (identical seed schedule), once at `threads=1` and
//! once at `threads=max` (at least 4, so the layered parallel engine is
//! exercised even on small CI boxes), and records plans/sec, mean runtime
//! and memo statistics per `(algorithm, n, threads)` cell.
//!
//! `--diff` compares plans/sec against a previously archived file and
//! prints the deltas — **warn-only**: it never fails the run, it just
//! makes perf regressions visible in the CI log.

use dpnext::adaptive::optimize_adaptive_run;
use dpnext::Optimizer;
use dpnext_bench::{run_sweep, serial_fraction, AlgoSpec, SweepResult};
use dpnext_core::{optimize_with, recost_plan, Algorithm, OptContext, OptimizeOptions};
use dpnext_serve::{FaultInjector, OptimizerService, ServeError, ServiceConfig};
use dpnext_workload::{
    generate_query, perturbed_pair, request_mix, GenConfig, MixConfig, Topology,
};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

const SIZES: [usize; 4] = [3, 4, 5, 6];
const QUERIES: usize = 20;
const SEED: u64 = 42;

/// Large-query cells: the adaptive degradation ladder on explicit
/// topologies beyond exact-DP reach, with a pinned budget so plans/s and
/// the winning-rung mix stay comparable across PRs.
const LARGE_TOPOLOGIES: [(Topology, &str); 3] = [
    (Topology::Chain, "chain"),
    (Topology::Star, "star"),
    (Topology::Clique, "clique"),
];
const LARGE_SIZES: [usize; 2] = [20, 30];
const LARGE_QUERIES: usize = 5;
const LARGE_BUDGET: u64 = 50_000;

/// Serving cells: queries/s through `dpnext-serve` for three request
/// paths — `cold` (no cache, no pool: every request a full optimize in a
/// fresh memo), `pooled` (no cache, arena pool on: full optimize in a
/// recycled memo) and `cached` (one hot shape: all but the first request
/// served from the plan cache) — at client-thread counts 1 and max. The
/// in-service optimizer runs `threads(1)` so client concurrency is the
/// measured axis.
const SERVE_N: usize = 6;
const SERVE_SHAPES: usize = 8;
const SERVE_REQUESTS_PER_CLIENT: usize = 64;

/// Robustness cells: plan drift under statistics q-error. Each cell
/// optimizes queries whose statistics were perturbed by a controlled
/// q-error, re-costs the chosen plan under the *true* statistics
/// ([`recost_plan`]) and reports the drift ratio chosen-cost /
/// true-optimum — 1.0 means the misestimates did not change the plan's
/// true cost at all.
const ROBUST_N: usize = 10;
const ROBUST_SEEDS: u64 = 3;
const ROBUST_QS: [f64; 3] = [1.0, 2.0, 4.0];
const ROBUST_TOPOLOGIES: [(Topology, &str); 2] =
    [(Topology::Chain, "chain"), (Topology::Star, "star")];
/// Optimization strategies compared under misestimation, as plan budgets
/// for the adaptive ladder: practically unbounded (the exact optimum on
/// the perturbed stats), the default large-query budget, and a
/// floor-clamped budget that ships the greedy plan.
const ROBUST_STRATEGIES: [(&str, u64); 3] =
    [("exact", 1 << 40), ("adaptive", 50_000), ("greedy", 1)];

/// Overload cells: the governed request path under pressure — a bounded
/// admission gate (2 concurrent + 2 queued), a per-request memory budget
/// and seeded memory-pressure faults. Reports serving throughput of the
/// *admitted* requests plus the governance counters and the
/// degradation-cause mix (which `--diff` compares across PRs).
const OVERLOAD_REQUESTS_PER_CLIENT: usize = 64;
const OVERLOAD_CONCURRENT: usize = 2;
const OVERLOAD_QUEUED: usize = 2;
const OVERLOAD_MEMORY_BUDGET: u64 = 192 << 10;
const OVERLOAD_PRESSURE_PER_MILLION: u32 = 250_000;
const OVERLOAD_PRESSURE_BUDGET: u64 = 48 << 10;

/// One emitted `(algorithm, n, threads)` measurement.
struct SmokeCell {
    algo: String,
    n: usize,
    threads: usize,
    queries: usize,
    runtime_us: f64,
    plans_built: f64,
    plans_per_sec: f64,
    arena: f64,
    width: f64,
    hit_rate: f64,
    worker_nanos: f64,
    replay_nanos: f64,
    /// Plan budget enforced on the cell's runs (0 = unbudgeted exact
    /// algorithm).
    budget: u64,
    /// Winning adaptive-ladder rungs, as `exact:a,linearized:b,greedy:c`
    /// counts (empty for the exact algorithms).
    modes: String,
    /// Whole requests served per second (serving cells only, 0 elsewhere).
    queries_per_sec: f64,
    /// Geometric-mean plan drift under q-error (robustness cells only,
    /// 0 elsewhere).
    drift_geomean: f64,
    /// Preformatted extra JSON fields (serving cells append cache/pool
    /// counters here; empty elsewhere).
    extra: String,
    /// Degradation-cause counts as `[budget_gated, budget_aborted,
    /// deadline_aborted, memory_aborted]` (adaptive and overload cells
    /// only; `None` elsewhere). `--diff` compares the mix across PRs.
    degradation: Option<[u64; 4]>,
    /// p99 per-request latency in µs (serving and overload cells only,
    /// 0 elsewhere). `--diff` compares it warn-only — mean throughput
    /// can hold steady while the tail quietly grows.
    latency_p99_us: f64,
}

/// The `q`-th percentile of per-request latencies (nanoseconds in,
/// microseconds out), by rank on the sorted samples.
fn latency_percentile_us(sorted_nanos: &[u64], q: f64) -> f64 {
    if sorted_nanos.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted_nanos.len() as f64).ceil() as usize).clamp(1, sorted_nanos.len()) - 1;
    sorted_nanos[rank] as f64 / 1e3
}

impl SmokeCell {
    /// Share of engine time in the merge + replay phase (0 at
    /// threads = 1, where everything is build work).
    fn replay_share(&self) -> f64 {
        serial_fraction(self.worker_nanos, self.replay_nanos)
    }
}

fn main() {
    let mut out_path = "BENCH_smoke.json".to_string();
    let mut diff_path: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--out" => out_path = it.next().expect("missing value for --out"),
            "--diff" => diff_path = Some(it.next().expect("missing value for --diff")),
            other => panic!("unknown flag {other} (supported: --out PATH, --diff PATH)"),
        }
    }

    let max_n = *SIZES.last().unwrap();
    let algos = [
        AlgoSpec::new(Algorithm::EaPrune, max_n),
        AlgoSpec::new(Algorithm::EaAll, max_n),
        AlgoSpec::new(Algorithm::DPhyp, max_n),
    ];
    // threads=1 is the sequential baseline; the second run exercises the
    // layered parallel engine — at least 4 workers even when the box has
    // fewer cores (oversubscription is honest data, not a hazard: results
    // are bit-identical, only the wall clock moves).
    let t_max = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .max(4);
    let runs: Vec<(usize, SweepResult)> = [1usize, t_max]
        .iter()
        .map(|&t| {
            (
                t,
                run_sweep(&SIZES, QUERIES, SEED, &algos, GenConfig::paper, t),
            )
        })
        .collect();

    let mut cells: Vec<SmokeCell> = Vec::new();
    for (threads, result) in &runs {
        for (ai, spec) in result.algos.iter().enumerate() {
            for (si, n) in result.sizes.iter().enumerate() {
                let Some(cell) = &result.cells[ai][si] else {
                    continue;
                };
                let runtime_s = cell.mean_runtime.as_secs_f64();
                let plans_per_sec = cell.mean_plans_built / runtime_s.max(1e-12);
                // Hot-path readout: the three numbers the enumeration
                // speed work tracks per cell — raw plan throughput, the
                // Amdahl share of the merge+replay phase, and the LPT
                // balance of the parallel bucketing/replay fan-out.
                let extra = format!(
                    ", \"hotpath\": {{ \"plans_per_sec\": {:.0}, \
                     \"replay_share\": {:.4}, \"lpt_imbalance_x100\": {:.0}, \
                     \"par_bucket_strata\": {:.2} }}",
                    plans_per_sec,
                    cell.serial_fraction(),
                    cell.mean_lpt_imbalance_x100,
                    cell.mean_par_bucket_strata,
                );
                cells.push(SmokeCell {
                    algo: spec.algo.name(),
                    n: *n,
                    threads: *threads,
                    queries: QUERIES,
                    runtime_us: runtime_s * 1e6,
                    plans_built: cell.mean_plans_built,
                    plans_per_sec,
                    arena: cell.mean_arena_plans,
                    width: cell.mean_peak_class_width,
                    hit_rate: cell.mean_prune_hit_rate,
                    worker_nanos: cell.mean_worker_nanos,
                    replay_nanos: cell.mean_replay_nanos,
                    budget: 0,
                    modes: String::new(),
                    queries_per_sec: 0.0,
                    drift_geomean: 0.0,
                    extra,
                    degradation: None,
                    latency_p99_us: 0.0,
                });
            }
        }
    }

    for (topo, tag) in LARGE_TOPOLOGIES {
        for n in LARGE_SIZES {
            cells.push(adaptive_cell(topo, tag, n));
        }
    }

    for client_threads in [1usize, t_max] {
        for mode in [ServeMode::Cold, ServeMode::Pooled, ServeMode::Cached] {
            cells.push(serve_cell(mode, client_threads));
        }
    }

    for (strategy, budget) in ROBUST_STRATEGIES {
        for (topo, tag) in ROBUST_TOPOLOGIES {
            for q in ROBUST_QS {
                cells.push(robust_cell(strategy, budget, topo, tag, q));
            }
        }
    }

    for client_threads in [1usize, t_max] {
        cells.push(overload_cell(client_threads));
    }

    let mut json = String::from("{\n  \"workload\": \"fig15-smoke\",\n");
    let _ = writeln!(
        json,
        "  \"large_query\": {{ \"sizes\": {LARGE_SIZES:?}, \"queries_per_cell\": \
         {LARGE_QUERIES}, \"plan_budget\": {LARGE_BUDGET} }},"
    );
    let _ = writeln!(json, "  \"sizes\": {SIZES:?},");
    let _ = writeln!(json, "  \"queries_per_size\": {QUERIES},");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(json, "  \"threads_max\": {t_max},");
    json.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            json.push_str(",\n");
        }
        let mut budget = if c.budget > 0 {
            format!(
                ", \"plan_budget\": {}, \"modes\": \"{}\"",
                c.budget, c.modes
            )
        } else {
            String::new()
        };
        if c.queries_per_sec > 0.0 {
            let _ = write!(budget, ", \"queries_per_sec\": {:.0}", c.queries_per_sec);
        }
        // Per-cell extra block (serving counters or the hot-path readout).
        budget.push_str(&c.extra);
        let _ = write!(
            json,
            "    {{ \"algorithm\": \"{}\", \"n\": {}, \"threads\": {}, \
             \"queries\": {}, \"mean_runtime_us\": {:.3}, \
             \"mean_plans_built\": {:.1}, \"plans_per_sec\": {:.0}, \
             \"mean_arena_plans\": {:.1}, \"mean_peak_class_width\": {:.1}, \
             \"mean_prune_hit_rate\": {:.4}, \"worker_nanos\": {:.0}, \
             \"replay_nanos\": {:.0}{budget} }}",
            c.algo,
            c.n,
            c.threads,
            c.queries,
            c.runtime_us,
            c.plans_built,
            c.plans_per_sec,
            c.arena,
            c.width,
            c.hit_rate,
            c.worker_nanos,
            c.replay_nanos
        );
    }
    json.push_str("\n  ]\n}\n");

    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!("{json}");
    eprintln!("wrote {out_path}");

    if let Some(prev) = diff_path {
        diff_against(&prev, &cells);
    }
}

/// One large-query cell: `Algorithm::Adaptive` over `LARGE_QUERIES` random
/// queries of one (topology, n) with the pinned `LARGE_BUDGET`. Sequential
/// by construction (budget enforcement is a streaming fold), so the cell
/// reports `threads = 1`.
fn adaptive_cell(topo: Topology, tag: &str, n: usize) -> SmokeCell {
    let cfg = GenConfig::topology(n, topo);
    let opt = Optimizer::new(Algorithm::Adaptive)
        .explain(false)
        .plan_budget(LARGE_BUDGET);
    let mut runtime = 0.0f64;
    let mut plans = 0.0f64;
    let mut arena = 0.0f64;
    let mut width = 0.0f64;
    let mut hits = 0.0f64;
    let mut modes = [0usize; 4]; // exact / partial-exact / linearized / greedy
    let mut degr = [0u64; 4]; // gated / budget-aborted / deadline-aborted / memory-aborted
    for q in 0..LARGE_QUERIES {
        let seed = SEED
            .wrapping_add(n as u64 * 1_000_003)
            .wrapping_add(q as u64 * 7_919);
        let query = generate_query(&cfg, seed);
        let r = opt.optimize(&query);
        assert!(
            r.plans_built <= r.memo.plan_budget,
            "budget violated: {} > {}",
            r.plans_built,
            r.memo.plan_budget
        );
        runtime += r.elapsed.as_secs_f64();
        plans += r.plans_built as f64;
        arena += r.memo.arena_plans as f64;
        width += r.memo.peak_class_width as f64;
        hits += r.memo.prune_hit_rate();
        match r.memo.adaptive_mode {
            dpnext::AdaptiveMode::Exact => modes[0] += 1,
            dpnext::AdaptiveMode::PartialExact => modes[1] += 1,
            dpnext::AdaptiveMode::Linearized => modes[2] += 1,
            dpnext::AdaptiveMode::Greedy => modes[3] += 1,
            dpnext::AdaptiveMode::None => unreachable!("adaptive run reported no mode"),
        }
        degr[0] += r.memo.degradation.budget_gated as u64;
        degr[1] += r.memo.degradation.budget_aborted as u64;
        degr[2] += r.memo.degradation.deadline_aborted as u64;
        degr[3] += r.memo.degradation.memory_aborted as u64;
    }
    let m = LARGE_QUERIES as f64;
    SmokeCell {
        algo: format!("Adaptive[{tag}]"),
        n,
        threads: 1,
        queries: LARGE_QUERIES,
        runtime_us: runtime / m * 1e6,
        plans_built: plans / m,
        plans_per_sec: plans / runtime.max(1e-12),
        arena: arena / m,
        width: width / m,
        hit_rate: hits / m,
        worker_nanos: 0.0,
        replay_nanos: 0.0,
        budget: LARGE_BUDGET,
        modes: format!(
            "exact:{},partial-exact:{},linearized:{},greedy:{}",
            modes[0], modes[1], modes[2], modes[3]
        ),
        queries_per_sec: 0.0,
        drift_geomean: 0.0,
        // Why the ladder fell short of the exact rung, split by cause
        // (counts over the cell's queries).
        extra: degradation_json(degr),
        degradation: Some(degr),
        latency_p99_us: 0.0,
    }
}

/// The degradation-cause mix of a cell as a JSON object fragment.
fn degradation_json(degr: [u64; 4]) -> String {
    format!(
        ", \"degradation\": {{ \"budget_gated\": {}, \"budget_aborted\": {}, \
         \"deadline_aborted\": {}, \"memory_aborted\": {} }}",
        degr[0], degr[1], degr[2], degr[3]
    )
}

/// One robustness cell: optimize `ROBUST_SEEDS` queries whose statistics
/// carry a log-uniform q-error (`dpnext_workload::perturbed_pair`), then
/// re-cost each chosen plan under the true statistics and compare against
/// the true EA-Prune optimum. `q = 1` is the control: the perturbation is
/// the identity, so the exact strategy's drift is exactly 1.
fn robust_cell(strategy: &str, budget: u64, topo: Topology, tag: &str, q: f64) -> SmokeCell {
    let cfg = GenConfig::topology(ROBUST_N, topo);
    let opts = OptimizeOptions {
        explain: false,
        threads: 1,
        plan_budget: budget,
        ..OptimizeOptions::default()
    };
    let mut runtime = 0.0f64;
    let mut plans = 0.0f64;
    let mut log_drift_sum = 0.0f64;
    let mut drift_max = 1.0f64;
    let exact_opts = OptimizeOptions {
        plan_budget: 0,
        ..opts
    };
    for s in 0..ROBUST_SEEDS {
        let mut seed = SEED.wrapping_add(s * 104_729).wrapping_add(ROBUST_N as u64);
        // Skip degenerate queries whose true optimum costs ~0 (a zero
        // selectivity or empty table makes every plan free, so a drift
        // ratio carries no signal); the walk is deterministic, so the
        // cell stays comparable across runs.
        let (truth, perturbed, true_opt) = loop {
            let (t, p) = perturbed_pair(&cfg, seed, q);
            let o = optimize_with(&t, Algorithm::EaPrune, &exact_opts);
            if o.plan.cost > 1e-6 {
                break (t, p, o);
            }
            seed = seed.wrapping_add(1);
        };
        // The strategy only ever sees the perturbed statistics.
        let run = optimize_adaptive_run(&perturbed, &opts);
        runtime += run.optimized.elapsed.as_secs_f64();
        plans += run.optimized.plans_built as f64;
        // What the chosen plan actually costs in the true world.
        let true_ctx = OptContext::new(truth);
        let recosted = recost_plan(&true_ctx, &run.memo, run.winner)
            .unwrap_or_else(|e| panic!("recost failed ({strategy} {tag} q={q} seed {s}): {e}"));
        let drift = (recosted.cost / true_opt.plan.cost.max(1e-300)).max(1.0);
        log_drift_sum += drift.ln();
        drift_max = drift_max.max(drift);
    }
    let m = ROBUST_SEEDS as f64;
    let drift_geomean = (log_drift_sum / m).exp();
    SmokeCell {
        algo: format!("Robust[{strategy}|{tag}|q{q:.0}]"),
        n: ROBUST_N,
        threads: 1,
        queries: ROBUST_SEEDS as usize,
        runtime_us: runtime / m * 1e6,
        plans_built: plans / m,
        plans_per_sec: plans / runtime.max(1e-12),
        arena: 0.0,
        width: 0.0,
        hit_rate: 0.0,
        worker_nanos: 0.0,
        replay_nanos: 0.0,
        budget,
        modes: String::new(),
        queries_per_sec: 0.0,
        drift_geomean,
        extra: format!(
            ", \"qerror\": {q:.0}, \"drift_geomean\": {drift_geomean:.4}, \
             \"drift_max\": {drift_max:.4}"
        ),
        degradation: None,
        latency_p99_us: 0.0,
    }
}

/// Which request path a serving cell measures.
#[derive(Clone, Copy)]
enum ServeMode {
    Cold,
    Pooled,
    Cached,
}

impl ServeMode {
    fn tag(self) -> &'static str {
        match self {
            ServeMode::Cold => "cold",
            ServeMode::Pooled => "pooled",
            ServeMode::Cached => "cached",
        }
    }
}

/// One serving-throughput cell: `client_threads` workers sharing one
/// [`OptimizerService`], each firing its slice of a deterministic
/// request mix.
fn serve_cell(mode: ServeMode, client_threads: usize) -> SmokeCell {
    let total = SERVE_REQUESTS_PER_CLIENT * client_threads;
    let mix_cfg = match mode {
        // One hot shape: everything after the first arrival is a hit.
        ServeMode::Cached => MixConfig::uniform(1, SERVE_N),
        // Uniform traffic over a shape pool; with the cache off every
        // request runs the DP, so cold vs pooled isolates the arena pool.
        _ => MixConfig::uniform(SERVE_SHAPES, SERVE_N),
    };
    let mix = request_mix(&mix_cfg, total, SEED);
    let config = match mode {
        ServeMode::Cold => ServiceConfig {
            cache_capacity: 0,
            pool_capacity: 0,
            deadline: None,
            ..ServiceConfig::default()
        },
        ServeMode::Pooled => ServiceConfig {
            cache_capacity: 0,
            pool_capacity: client_threads,
            deadline: None,
            ..ServiceConfig::default()
        },
        ServeMode::Cached => ServiceConfig::default(),
    };
    let service = OptimizerService::with_config(
        Optimizer::new(Algorithm::EaPrune).threads(1).explain(false),
        config,
    );

    let plans = AtomicU64::new(0);
    let latencies = std::sync::Mutex::new(Vec::with_capacity(total));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..client_threads {
            let (service, mix, plans, latencies) = (&service, &mix, &plans, &latencies);
            scope.spawn(move || {
                let chunk = &mix.schedule()
                    [t * SERVE_REQUESTS_PER_CLIENT..(t + 1) * SERVE_REQUESTS_PER_CLIENT];
                let mut local = Vec::with_capacity(chunk.len());
                for &shape in chunk {
                    let t0 = Instant::now();
                    let served = service
                        .optimize(&mix.shapes()[shape])
                        .expect("no faults injected");
                    local.push(t0.elapsed().as_nanos() as u64);
                    plans.fetch_add(served.result.plans_built, Ordering::Relaxed);
                }
                latencies.lock().unwrap().extend(local);
            });
        }
    });
    let runtime = start.elapsed().as_secs_f64();
    let mut latencies = latencies.into_inner().unwrap();
    latencies.sort_unstable();
    let p50 = latency_percentile_us(&latencies, 0.50);
    let p99 = latency_percentile_us(&latencies, 0.99);

    let stats = service.stats();
    SmokeCell {
        algo: format!("Serve[{}]", mode.tag()),
        n: SERVE_N,
        threads: client_threads,
        queries: total,
        runtime_us: runtime / total as f64 * 1e6,
        plans_built: plans.load(Ordering::Relaxed) as f64 / total as f64,
        plans_per_sec: plans.load(Ordering::Relaxed) as f64 / runtime.max(1e-12),
        arena: 0.0,
        width: 0.0,
        hit_rate: 0.0,
        worker_nanos: 0.0,
        replay_nanos: 0.0,
        budget: 0,
        modes: String::new(),
        queries_per_sec: total as f64 / runtime.max(1e-12),
        drift_geomean: 0.0,
        extra: format!(
            ", \"cache_hits\": {}, \"cache_misses\": {}, \"pool_created\": {}, \
             \"pool_reused\": {}, \"latency_p50_us\": {p50:.1}, \"latency_p99_us\": {p99:.1}",
            stats.cache.hits, stats.cache.misses, stats.pool.created, stats.pool.reused
        ),
        degradation: None,
        latency_p99_us: p99,
    }
}

/// One overload cell: `client_threads` workers hammering a governed
/// service — bounded admission, a per-request memory budget and seeded
/// memory-pressure faults. Rejected requests are part of the measurement
/// (they are the governance working), so the cell reports both the
/// admitted throughput and the full counter set.
fn overload_cell(client_threads: usize) -> SmokeCell {
    let total = OVERLOAD_REQUESTS_PER_CLIENT * client_threads;
    let mix = request_mix(&MixConfig::uniform(SERVE_SHAPES, SERVE_N), total, SEED);
    let service = OptimizerService::with_config(
        Optimizer::new(Algorithm::EaPrune).threads(1).explain(false),
        ServiceConfig {
            cache_capacity: 0, // every request must reach the gate
            pool_capacity: client_threads,
            memory_budget: OVERLOAD_MEMORY_BUDGET,
            max_concurrent: OVERLOAD_CONCURRENT,
            max_queued: OVERLOAD_QUEUED,
            ..ServiceConfig::default()
        },
    )
    .with_fault_injection(
        FaultInjector::new(SEED, 0, 0, std::time::Duration::ZERO)
            .with_memory_pressure(OVERLOAD_PRESSURE_PER_MILLION, OVERLOAD_PRESSURE_BUDGET),
    );

    let plans = AtomicU64::new(0);
    let ok = AtomicU64::new(0);
    let rejected = AtomicU64::new(0);
    let degr = [(); 4].map(|_| AtomicU64::new(0));
    // Admitted-request latencies only: a fast rejection is governance
    // working, not tail latency of the serving path.
    let latencies = std::sync::Mutex::new(Vec::with_capacity(total));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..client_threads {
            let (service, mix, plans, ok, rejected, degr, latencies) =
                (&service, &mix, &plans, &ok, &rejected, &degr, &latencies);
            scope.spawn(move || {
                let chunk = &mix.schedule()
                    [t * OVERLOAD_REQUESTS_PER_CLIENT..(t + 1) * OVERLOAD_REQUESTS_PER_CLIENT];
                let mut local = Vec::with_capacity(chunk.len());
                for &shape in chunk {
                    let t0 = Instant::now();
                    match service.optimize(&mix.shapes()[shape]) {
                        Ok(served) => {
                            local.push(t0.elapsed().as_nanos() as u64);
                            ok.fetch_add(1, Ordering::Relaxed);
                            plans.fetch_add(served.result.plans_built, Ordering::Relaxed);
                            let d = served.result.memo.degradation;
                            for (slot, hit) in degr.iter().zip([
                                d.budget_gated,
                                d.budget_aborted,
                                d.deadline_aborted,
                                d.memory_aborted,
                            ]) {
                                slot.fetch_add(hit as u64, Ordering::Relaxed);
                            }
                        }
                        Err(ServeError::Overloaded { .. }) => {
                            rejected.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("overload cell: unexpected error kind: {e}"),
                    }
                }
                latencies.lock().unwrap().extend(local);
            });
        }
    });
    let runtime = start.elapsed().as_secs_f64();
    let mut latencies = latencies.into_inner().unwrap();
    latencies.sort_unstable();
    let p50 = latency_percentile_us(&latencies, 0.50);
    let p99 = latency_percentile_us(&latencies, 0.99);
    let (ok, rejected) = (ok.load(Ordering::Relaxed), rejected.load(Ordering::Relaxed));
    assert_eq!(
        total as u64,
        ok + rejected,
        "every overload request must resolve as a success or a rejection"
    );
    let degr = [0, 1, 2, 3].map(|i| degr[i].load(Ordering::Relaxed));

    let stats = service.stats();
    let mut extra = format!(
        ", \"served\": {ok}, \"rejected\": {rejected}, \"queued_peak\": {}, \
         \"shed\": {}, \"memory_degraded\": {}, \"ledger_peak_bytes\": {}, \
         \"quarantined_bytes\": {}",
        stats.gate.queued_peak,
        stats.shed,
        stats.memory_degraded,
        stats.ledger.peak,
        stats.ledger.quarantined_bytes,
    );
    let _ = write!(
        extra,
        ", \"latency_p50_us\": {p50:.1}, \"latency_p99_us\": {p99:.1}"
    );
    extra.push_str(&degradation_json(degr));
    SmokeCell {
        algo: "Overload[burst]".to_string(),
        n: SERVE_N,
        threads: client_threads,
        queries: total,
        runtime_us: runtime / total as f64 * 1e6,
        plans_built: plans.load(Ordering::Relaxed) as f64 / ok.max(1) as f64,
        plans_per_sec: plans.load(Ordering::Relaxed) as f64 / runtime.max(1e-12),
        arena: 0.0,
        width: 0.0,
        hit_rate: 0.0,
        worker_nanos: 0.0,
        replay_nanos: 0.0,
        budget: 0,
        modes: String::new(),
        queries_per_sec: ok as f64 / runtime.max(1e-12),
        drift_geomean: 0.0,
        extra,
        degradation: Some(degr),
        latency_p99_us: p99,
    }
}

/// One parsed cell of a previously archived `BENCH_smoke.json`.
struct PrevCell {
    algo: String,
    n: usize,
    threads: usize,
    plans_per_sec: f64,
    /// `None` for pre-phase-split archives (fields absent).
    replay_share: Option<f64>,
    /// `None` for non-robustness cells and pre-robustness archives.
    drift_geomean: Option<f64>,
    /// Degradation-cause counts in [`SmokeCell::degradation`] order;
    /// `None` for cells and archives without the mix.
    degradation: Option<[f64; 4]>,
    /// p99 request latency in µs; `None` for non-serving cells and
    /// pre-latency archives.
    latency_p99_us: Option<f64>,
}

/// The four degradation-cause JSON keys, in [`SmokeCell::degradation`]
/// order.
const DEGRADATION_KEYS: [&str; 4] = [
    "\"budget_gated\": ",
    "\"budget_aborted\": ",
    "\"deadline_aborted\": ",
    "\"memory_aborted\": ",
];

fn parse_degradation(line: &str) -> Option<[f64; 4]> {
    let mut out = [0.0f64; 4];
    for (slot, key) in out.iter_mut().zip(DEGRADATION_KEYS) {
        *slot = field_num(line, key)?;
    }
    Some(out)
}

/// Compare two degradation-cause mixes as shares of their own totals and
/// describe any cause whose share moved by more than 25 points — a shift
/// in *why* the ladder degrades (e.g. deadline aborts turning into memory
/// aborts) that raw throughput numbers hide. Warn-only, like every other
/// diff signal.
fn degradation_shift(old: [f64; 4], new: [u64; 4]) -> String {
    let old_total: f64 = old.iter().sum();
    let new_total: f64 = new.iter().map(|&v| v as f64).sum();
    if old_total <= 0.0 || new_total <= 0.0 {
        // One side never degraded; shares are undefined. Flag only the
        // appearance of degradation where there was none.
        return if old_total <= 0.0 && new_total > 0.0 {
            format!("  ⚠ cell started degrading ({new_total:.0} causes, had none)")
        } else {
            String::new()
        };
    }
    let names = [
        "budget_gated",
        "budget_aborted",
        "deadline_aborted",
        "memory_aborted",
    ];
    let mut out = String::new();
    for i in 0..4 {
        let old_share = 100.0 * old[i] / old_total;
        let new_share = 100.0 * new[i] as f64 / new_total;
        if (new_share - old_share).abs() > 25.0 {
            let _ = write!(
                out,
                ", {} share {old_share:.0}% → {new_share:.0}%  ⚠ degradation mix shifted",
                names[i]
            );
        }
    }
    out
}

/// Parse a previously archived `BENCH_smoke.json` (our own line-per-cell
/// format; pre-threads files lack the `threads` field and are treated as
/// `threads=1`, pre-phase-split files lack the `*_nanos` fields) and
/// print warn-only plans/sec and replay-share deltas.
fn diff_against(prev_path: &str, cells: &[SmokeCell]) {
    let Ok(prev) = std::fs::read_to_string(prev_path) else {
        eprintln!("perf-diff: cannot read {prev_path}; skipping comparison");
        return;
    };
    let mut old: Vec<PrevCell> = Vec::new();
    for line in prev.lines() {
        let Some(algo) = field_str(line, "\"algorithm\": \"") else {
            continue;
        };
        let (Some(n), Some(pps)) = (
            field_num(line, "\"n\": "),
            field_num(line, "\"plans_per_sec\": "),
        ) else {
            continue;
        };
        let threads = field_num(line, "\"threads\": ").unwrap_or(1.0);
        let replay_share = match (
            field_num(line, "\"worker_nanos\": "),
            field_num(line, "\"replay_nanos\": "),
        ) {
            (Some(w), Some(r)) => Some(serial_fraction(w, r)),
            _ => None,
        };
        old.push(PrevCell {
            algo,
            n: n as usize,
            threads: threads as usize,
            plans_per_sec: pps,
            replay_share,
            drift_geomean: field_num(line, "\"drift_geomean\": "),
            degradation: parse_degradation(line),
            latency_p99_us: field_num(line, "\"latency_p99_us\": "),
        });
    }
    if old.is_empty() {
        eprintln!("perf-diff: no cells found in {prev_path}; skipping comparison");
        return;
    }
    eprintln!("perf-diff vs {prev_path} (warn-only):");
    for c in cells {
        let Some(prev) = old
            .iter()
            .find(|p| p.algo == c.algo && p.n == c.n && p.threads == c.threads)
        else {
            // Warn-only by design: a cell absent from the archive is a
            // freshly added measurement (new algorithm, size or phase
            // field), not a regression — the next run's archive has it.
            eprintln!(
                "  {:<10} n={} threads={}: new cell, no baseline in the previous artifact",
                c.algo, c.n, c.threads
            );
            continue;
        };
        let delta = 100.0 * (c.plans_per_sec - prev.plans_per_sec) / prev.plans_per_sec.max(1.0);
        let marker = if delta <= -10.0 {
            "  ⚠ regression?"
        } else {
            ""
        };
        // Replay-share trajectory: the serial fraction the
        // class-partitioned replay attacks. Only meaningful at
        // threads > 1 (streaming reports 0/0) and against archives that
        // already carry the phase fields.
        // Robustness trajectory: plan drift under q-error is a quality
        // property, so a growing geomean means the optimizer became more
        // sensitive to misestimation — worth a look even when plans/sec
        // moved the right way.
        let drift = match prev.drift_geomean {
            Some(old_drift) if c.drift_geomean > 0.0 => {
                let warn = if c.drift_geomean > old_drift * 1.05 {
                    "  ⚠ drift growing?"
                } else {
                    ""
                };
                format!(", drift {:.3} → {:.3}{warn}", old_drift, c.drift_geomean)
            }
            _ => String::new(),
        };
        // Degradation-cause mix: same-throughput cells can still have
        // swapped *why* they degrade (satellite of the governance work) —
        // compare cause shares when both sides carry the mix.
        let mix = match (prev.degradation, c.degradation) {
            (Some(old_mix), Some(new_mix)) => degradation_shift(old_mix, new_mix),
            _ => String::new(),
        };
        // Tail-latency trajectory (serving and overload cells): p99 can
        // regress while mean throughput holds, so compare it on its own.
        // Warn-only like everything else here.
        let tail = match prev.latency_p99_us {
            Some(old_p99) if c.latency_p99_us > 0.0 && old_p99 > 0.0 => {
                let warn = if c.latency_p99_us > old_p99 * 1.25 {
                    "  ⚠ p99 latency regression?"
                } else {
                    ""
                };
                format!(", p99 {old_p99:.0}µs → {:.0}µs{warn}", c.latency_p99_us)
            }
            _ => String::new(),
        };
        let share = match prev.replay_share {
            Some(old_share) if c.threads > 1 => {
                let new_share = 100.0 * c.replay_share();
                let old_share = 100.0 * old_share;
                let warn = if new_share > old_share + 5.0 {
                    "  ⚠ serial section growing?"
                } else {
                    ""
                };
                format!(", replay share {old_share:.1}% → {new_share:.1}%{warn}")
            }
            _ => String::new(),
        };
        eprintln!(
            "  {:<10} n={} threads={}: {:.0}k → {:.0}k plans/s \
             ({delta:+.1}%){marker}{drift}{tail}{share}{mix}",
            c.algo,
            c.n,
            c.threads,
            prev.plans_per_sec / 1e3,
            c.plans_per_sec / 1e3
        );
    }
}

fn field_str(line: &str, key: &str) -> Option<String> {
    let start = line.find(key)? + key.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

fn field_num(line: &str, key: &str) -> Option<f64> {
    let start = line.find(key)? + key.len();
    let end = line[start..]
        .find(|c: char| !c.is_ascii_digit() && c != '.' && c != '-')
        .map(|e| e + start)
        .unwrap_or(line.len());
    line[start..end].parse().ok()
}
