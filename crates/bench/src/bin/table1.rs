//! Table 1: the `C_out` values of the Fig. 11 example, measured by
//! executing both operator trees on the paper's exact relation instances.

use dpnext::{Algorithm, Optimizer};
use dpnext_algebra::{AggCall, AggKind, AlgExpr, AttrId, Expr, JoinPred};
use dpnext_workload::fig11::{fig11_database, fig11_query, A, D, DCOUNT, E, F};

fn main() {
    let db = fig11_database();

    // Left tree of Fig. 11: lazy (grouping on top).
    let lazy = AlgExpr::GroupBy {
        input: Box::new(AlgExpr::InnerJoin {
            left: Box::new(AlgExpr::scan("R0")),
            right: Box::new(AlgExpr::InnerJoin {
                left: Box::new(AlgExpr::scan("R1")),
                right: Box::new(AlgExpr::scan("R2")),
                pred: JoinPred::eq(D, E),
            }),
            pred: JoinPred::eq(A, F),
        }),
        attrs: vec![D],
        aggs: vec![AggCall::count_star(DCOUNT)],
    };

    // Right tree: eager (Γ pushed onto R1).
    let dprime = AttrId(50);
    let eager_join = AlgExpr::InnerJoin {
        left: Box::new(AlgExpr::scan("R0")),
        right: Box::new(AlgExpr::InnerJoin {
            left: Box::new(AlgExpr::GroupBy {
                input: Box::new(AlgExpr::scan("R1")),
                attrs: vec![D],
                aggs: vec![AggCall::count_star(dprime)],
            }),
            right: Box::new(AlgExpr::scan("R2")),
            pred: JoinPred::eq(D, E),
        }),
        pred: JoinPred::eq(A, F),
    };
    let eager = AlgExpr::GroupBy {
        input: Box::new(eager_join.clone()),
        attrs: vec![D],
        aggs: vec![AggCall::new(DCOUNT, AggKind::Sum, Expr::attr(dprime))],
    };
    let eager_elim = AlgExpr::Project {
        input: Box::new(AlgExpr::Map {
            input: Box::new(eager_join),
            exts: vec![(DCOUNT, Expr::attr(dprime))],
        }),
        attrs: vec![D, DCOUNT],
        dedup: false,
    };

    let (_, lazy_cost) = lazy.eval_counting(&db);
    let (_, eager_cost) = eager.eval_counting(&db);
    let (_, elim_cost) = eager_elim.eval_counting(&db);

    println!("# Table 1 — C_out of the Fig. 11 trees (paper: 10 / 9 / 7)");
    println!("{:<44} {:>8}", "tree", "C_out");
    println!("{:<44} {:>8}", "lazy:  Γ(R0 ⋈ (R1 ⋈ R2))", lazy_cost);
    println!("{:<44} {:>8}", "eager: Γ(R0 ⋈ (Γ(R1) ⋈ R2))", eager_cost);
    println!(
        "{:<44} {:>8}",
        "eager + top grouping eliminated (Π)", elim_cost
    );

    // And what the plan generators make of it.
    let q = fig11_query();
    println!("\n# plan generators on the same query (measured C_out)");
    for algo in [
        Algorithm::DPhyp,
        Algorithm::H1,
        Algorithm::H2(1.5),
        Algorithm::EaPrune,
    ] {
        let opt = Optimizer::new(algo).optimize(&q);
        let (_, measured) = opt.plan.root.eval_counting(&db);
        println!(
            "{:<12} estimated={:>8.1}  measured={:>4}  top-grouping={}  memo={} plans (peak width {}, prune hits {:.0}%)",
            algo.name(),
            opt.plan.cost,
            measured,
            opt.plan.top_grouping,
            opt.memo.arena_plans,
            opt.memo.peak_class_width,
            100.0 * opt.memo.prune_hit_rate()
        );
    }
}
