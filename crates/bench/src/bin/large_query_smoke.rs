//! Large-query smoke: the CI canary for enumeration blowups. Runs
//! `Algorithm::Adaptive` on 30-relation queries of every explicit
//! topology — including the star, the expressible enumeration worst case
//! (`#ccp = 29·2^28`) — under a tight plan budget, and **fails hard**
//! (nonzero exit) when a budget is violated, a winning plan is invalid,
//! or any single optimization exceeds the wall-clock bound. The CI step
//! additionally wraps the whole run in a `timeout`, so even a hang inside
//! the enumerator (the exact failure mode the budget ladder exists to
//! prevent) surfaces as a fast red build instead of a stuck job.
//!
//! Usage: `large_query_smoke [--n N] [--budget B] [--limit-secs S]`.

use dpnext::adaptive::optimize_adaptive_run;
use dpnext::core::{validate_complete_plan, OptimizeOptions};
use dpnext_workload::{generate_query, GenConfig, Topology};
use std::time::Instant;

const TOPOLOGIES: [(Topology, &str); 4] = [
    (Topology::Chain, "chain"),
    (Topology::Star, "star"),
    (Topology::Clique, "clique"),
    (Topology::Mixed, "mixed"),
];

fn main() {
    let mut n = 30usize;
    let mut budget = 20_000u64;
    let mut limit_secs = 5.0f64;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let v = it
            .next()
            .unwrap_or_else(|| panic!("missing value for {flag}"));
        match flag.as_str() {
            "--n" => n = v.parse().expect("--n"),
            "--budget" => budget = v.parse().expect("--budget"),
            "--limit-secs" => limit_secs = v.parse().expect("--limit-secs"),
            other => panic!("unknown flag {other} (supported: --n --budget --limit-secs)"),
        }
    }
    let opts = OptimizeOptions {
        explain: false,
        threads: 1,
        plan_budget: budget,
        ..OptimizeOptions::default()
    };
    let mut failures = 0usize;
    for (topo, tag) in TOPOLOGIES {
        for seed in 0..3u64 {
            let query = generate_query(&GenConfig::topology(n, topo), seed);
            let start = Instant::now();
            let run = optimize_adaptive_run(&query, &opts);
            let elapsed = start.elapsed().as_secs_f64();
            let stats = run.optimized.memo;
            let mut errs: Vec<String> = Vec::new();
            if run.optimized.plans_built > stats.plan_budget {
                errs.push(format!(
                    "plans_built {} > budget {}",
                    run.optimized.plans_built, stats.plan_budget
                ));
            }
            if let Err(e) = validate_complete_plan(&run.ctx, &run.memo, run.winner) {
                errs.push(format!("invalid plan: {e}"));
            }
            if elapsed > limit_secs {
                errs.push(format!("took {elapsed:.2}s (limit {limit_secs}s)"));
            }
            let verdict = if errs.is_empty() { "ok" } else { "FAIL" };
            println!(
                "{verdict}  {tag:<7} n={n} seed={seed}: mode={} plans={}/{} degraded={} \
                 cost={:.3e} {:.1}ms{}",
                stats.adaptive_mode,
                run.optimized.plans_built,
                stats.plan_budget,
                stats.degradation,
                run.optimized.plan.cost,
                elapsed * 1e3,
                if errs.is_empty() {
                    String::new()
                } else {
                    format!("  [{}]", errs.join("; "))
                }
            );
            failures += errs.len();
        }
    }
    if failures > 0 {
        eprintln!("large_query_smoke: {failures} failure(s)");
        std::process::exit(1);
    }
}
