//! Figure 16: optimization runtime of DPhyp, EA-Prune, EA-All and H1
//! (log scale in the paper). EA-All stops at 8 relations, EA-Prune at a
//! configurable cap (13 in the paper; 10 by default here).
//!
//! Usage: `fig16 [--queries N] [--min N] [--max N] [--seed S]`.

use dpnext_bench::{print_memo_table, print_table, run_sweep, AlgoSpec, Args};
use dpnext_core::Algorithm;
use dpnext_workload::GenConfig;

fn main() {
    let args = Args::parse(20, 3, 16);
    let ea_all_cap = 7.min(args.max_n);
    let ea_prune_cap = 10.min(args.max_n);
    let algos = [
        AlgoSpec::new(Algorithm::DPhyp, args.max_n),
        AlgoSpec::new(Algorithm::H1, args.max_n),
        AlgoSpec::new(Algorithm::EaPrune, ea_prune_cap),
        AlgoSpec::new(Algorithm::EaAll, ea_all_cap),
    ];
    let result = run_sweep(
        &args.sizes(),
        args.queries,
        args.seed,
        &algos,
        GenConfig::paper,
        args.threads,
    );
    println!(
        "{}",
        print_table(
            "Fig. 16 — mean optimization runtime [µs]",
            &result,
            |c| { format!("{:.1}", c.mean_runtime.as_secs_f64() * 1e6) }
        )
    );
    println!(
        "{}",
        print_table(
            "Fig. 16 (supplement) — mean plans constructed",
            &result,
            |c| { format!("{:.0}", c.mean_plans_built) }
        )
    );
    println!("{}", print_memo_table(&result));
}
