//! Figure 17: plan quality of the heuristics — H1 and H2 with tolerance
//! factors F ∈ {1.01, 1.03, 1.05, 1.1} — relative to the optimum
//! (EA-Prune).
//!
//! Usage: `fig17 [--queries N] [--min N] [--max N] [--seed S]`.

use dpnext_bench::{print_memo_table, print_table, run_sweep, AlgoSpec, Args};
use dpnext_core::Algorithm;
use dpnext_workload::GenConfig;

fn main() {
    let args = Args::parse(50, 3, 10);
    let algos = [
        AlgoSpec::new(Algorithm::EaPrune, args.max_n), // reference
        AlgoSpec::new(Algorithm::H1, args.max_n),
        AlgoSpec::new(Algorithm::H2(1.01), args.max_n),
        AlgoSpec::new(Algorithm::H2(1.03), args.max_n),
        AlgoSpec::new(Algorithm::H2(1.05), args.max_n),
        AlgoSpec::new(Algorithm::H2(1.1), args.max_n),
    ];
    let result = run_sweep(
        &args.sizes(),
        args.queries,
        args.seed,
        &algos,
        GenConfig::paper,
        args.threads,
    );
    println!(
        "{}",
        print_table(
            "Fig. 17 — heuristic plan cost relative to EA-Prune",
            &result,
            |c| { format!("{:.4}", c.mean_rel_cost) }
        )
    );
    println!(
        "{}",
        print_table(
            "Fig. 17 (outliers) — worst per-query ratio",
            &result,
            |c| { format!("{:.2}", c.max_rel_cost) }
        )
    );
    println!("{}", print_memo_table(&result));
}
