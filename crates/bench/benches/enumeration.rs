//! Microbenchmarks for the csg-cmp-pair enumerator (DPhyp substrate).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dpnext_hypergraph::{count_ccps, Hypergraph};

fn chain(n: usize) -> Hypergraph {
    let mut g = Hypergraph::new(n);
    for i in 0..n - 1 {
        g.add_simple(i, i + 1, i);
    }
    g
}

fn star(n: usize) -> Hypergraph {
    let mut g = Hypergraph::new(n);
    for i in 1..n {
        g.add_simple(0, i, i - 1);
    }
    g
}

fn clique(n: usize) -> Hypergraph {
    let mut g = Hypergraph::new(n);
    let mut label = 0;
    for i in 0..n {
        for j in i + 1..n {
            g.add_simple(i, j, label);
            label += 1;
        }
    }
    g
}

fn bench_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("ccp_enumeration");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for n in [10usize, 16, 20] {
        group.bench_function(format!("chain_{n}"), |b| {
            let g = chain(n);
            b.iter(|| black_box(count_ccps(&g)))
        });
        group.bench_function(format!("star_{n}"), |b| {
            let g = star(n);
            b.iter(|| black_box(count_ccps(&g)))
        });
    }
    for n in [8usize, 10, 12] {
        group.bench_function(format!("clique_{n}"), |b| {
            let g = clique(n);
            b.iter(|| black_box(count_ccps(&g)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_enumeration);
criterion_main!(benches);
