//! Microbenchmarks for the five plan generators on fixed random queries.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dpnext_core::{optimize, Algorithm};
use dpnext_workload::{generate_query, GenConfig};

fn bench_optimizers(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimize");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for n in [5usize, 8, 10] {
        let query = generate_query(&GenConfig::paper(n), 4242);
        group.bench_function(format!("dphyp_n{n}"), |b| {
            b.iter(|| black_box(optimize(&query, Algorithm::DPhyp).plan.cost))
        });
        group.bench_function(format!("h1_n{n}"), |b| {
            b.iter(|| black_box(optimize(&query, Algorithm::H1).plan.cost))
        });
        group.bench_function(format!("h2_n{n}"), |b| {
            b.iter(|| black_box(optimize(&query, Algorithm::H2(1.03)).plan.cost))
        });
        if n <= 8 {
            group.bench_function(format!("ea_prune_n{n}"), |b| {
                b.iter(|| black_box(optimize(&query, Algorithm::EaPrune).plan.cost))
            });
        }
        if n <= 6 {
            group.bench_function(format!("ea_all_n{n}"), |b| {
                b.iter(|| black_box(optimize(&query, Algorithm::EaAll).plan.cost))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_optimizers);
criterion_main!(benches);
