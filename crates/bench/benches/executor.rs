//! Microbenchmarks for the algebra interpreter (joins, grouping).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dpnext_algebra::ops::{full_outer_join, inner_join};
use dpnext_algebra::{group_by, AggCall, AggKind, AttrId, Expr, JoinPred, Relation, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn table(attrs: [u32; 2], rows: usize, domain: i64, seed: u64) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    let rows = (0..rows)
        .map(|_| {
            vec![
                Value::Int(rng.gen_range(0..domain)),
                Value::Int(rng.gen_range(0..domain)),
            ]
        })
        .collect();
    Relation::from_rows(vec![AttrId(attrs[0]), AttrId(attrs[1])], rows)
}

fn bench_executor(c: &mut Criterion) {
    let mut group = c.benchmark_group("executor");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let l = table([0, 1], 5_000, 500, 1);
    let r = table([2, 3], 5_000, 500, 2);
    let pred = JoinPred::eq(AttrId(0), AttrId(2));
    group.bench_function("hash_join_5k_x_5k", |b| {
        b.iter(|| black_box(inner_join(&l, &r, &pred).len()))
    });
    // The full outerjoin is nested-loop (it must track matches on both
    // sides); bench a smaller instance.
    let ls = table([0, 1], 1_000, 200, 3);
    let rs = table([2, 3], 1_000, 200, 4);
    group.bench_function("full_outer_1k_x_1k", |b| {
        b.iter(|| black_box(full_outer_join(&ls, &rs, &pred, &vec![], &vec![]).len()))
    });
    let aggs = vec![
        AggCall::count_star(AttrId(9)),
        AggCall::new(AttrId(8), AggKind::Sum, Expr::attr(AttrId(1))),
    ];
    group.bench_function("group_by_5k", |b| {
        b.iter(|| black_box(group_by(&l, &[AttrId(0)], &aggs).len()))
    });
    group.finish();
}

criterion_group!(benches, bench_executor);
criterion_main!(benches);
