//! TPC-H integration tests: the paper's Table-2 queries optimized and —
//! for the introductory query — executed on synthetic data.

use dpnext::workload::{ex_query, q10, q3, q5, table2_queries};
use dpnext::{Algorithm, Optimized, Optimizer};
use dpnext_query::Query;

/// All TPC-H assertions route through the `Optimizer` facade.
fn optimize(query: &Query, algo: Algorithm) -> Optimized {
    Optimizer::new(algo).optimize(query)
}

#[test]
fn ex_eager_plan_executes_correctly() {
    let ex = ex_query();
    let db = ex.database(0.003, 99);
    let reference = ex.query.canonical_plan().eval(&db);
    for algo in [
        Algorithm::DPhyp,
        Algorithm::H1,
        Algorithm::H2(1.03),
        Algorithm::EaPrune,
    ] {
        let opt = optimize(&ex.query, algo);
        let res = opt.plan.root.eval(&db);
        assert!(res.bag_eq(&reference), "{} wrong on Ex", algo.name());
    }
}

#[test]
fn ex_gains_orders_of_magnitude() {
    // The headline claim of §1: eager aggregation moves the grouping
    // through the outerjoin barrier; the cost ratio is enormous.
    let ex = ex_query();
    let base = optimize(&ex.query, Algorithm::EaPrune).plan.cost;
    let lazy = optimize(&ex.query, Algorithm::DPhyp).plan.cost;
    assert!(
        lazy / base > 1_000.0,
        "expected a huge gain on Ex, got {:.1}",
        lazy / base
    );
    // The eager plan pushes groupings below the full outerjoin.
    let plan = optimize(&ex.query, Algorithm::EaPrune).plan.root;
    assert!(plan.grouping_count() >= 2, "plan:\n{plan}");
}

#[test]
fn q3_q10_gain_q5_does_not() {
    // Table 2 shape: Q3 and Q10 benefit clearly, Q5 provides the smallest
    // gain.
    let gain = |q: &dpnext::workload::TpchQuery| {
        let dp = optimize(&q.query, Algorithm::DPhyp).plan.cost;
        let ea = optimize(&q.query, Algorithm::EaPrune).plan.cost;
        ea / dp
    };
    let g3 = gain(&q3());
    let g5 = gain(&q5());
    let g10 = gain(&q10());
    assert!(g3 < 0.7, "Q3 rel cost {g3}");
    assert!(g10 < 0.7, "Q10 rel cost {g10}");
    assert!(g5 > 0.8, "Q5 rel cost {g5} — should be the smallest gain");
}

#[test]
fn heuristics_match_optimum_on_tpch() {
    // Table 2: H1/H2 find the same plans as EA on these queries (H1 ties
    // the optimum on Q3/Q5/Q10 and Ex in the paper, modulo Q3 for H1).
    for q in table2_queries() {
        let ea = optimize(&q.query, Algorithm::EaPrune).plan.cost;
        let h2 = optimize(&q.query, Algorithm::H2(1.03)).plan.cost;
        assert!(h2 <= ea * 1.5 + 1e-9, "{}: H2 {h2} vs EA {ea}", q.name);
    }
}

#[test]
fn cyclic_q5_is_planned_correctly() {
    // Q5's cycle (c_nationkey = s_nationkey) exercises the multi-edge-cut
    // merging; all algorithms must produce a complete plan.
    let q = q5();
    for algo in [Algorithm::DPhyp, Algorithm::H1, Algorithm::EaPrune] {
        let opt = optimize(&q.query, algo);
        assert!(opt.plan.cost.is_finite(), "{}", algo.name());
    }
}

#[test]
fn ea_prune_equals_ea_all_on_tpch() {
    for q in table2_queries() {
        let all = optimize(&q.query, Algorithm::EaAll).plan.cost;
        let pruned = optimize(&q.query, Algorithm::EaPrune).plan.cost;
        assert!(
            (all - pruned).abs() <= 1e-9 * all.max(1.0),
            "{}: {all} vs {pruned}",
            q.name
        );
    }
}
