//! Workspace-level integration tests exercising the full public API
//! through the facade crate: query construction → conflict detection →
//! plan generation → compilation → execution.

use dpnext::workload::{generate_data, generate_query, GenConfig, OpWeights};
use dpnext::{Algorithm, DominanceKind, Optimized, Optimizer};
use dpnext_query::Query;

/// The workspace tests route through the `Optimizer` facade.
fn optimize(query: &Query, algo: Algorithm) -> Optimized {
    Optimizer::new(algo).optimize(query)
}

#[test]
fn facade_reexports_work_together() {
    let query = generate_query(&GenConfig::oracle(4), 1);
    let db = generate_data(&query, 8, 0.1, 1);
    let reference = query.canonical_plan().eval(&db);
    let opt = optimize(&query, Algorithm::EaPrune);
    assert!(opt.plan.root.eval(&db).bag_eq(&reference));
}

#[test]
fn optimization_is_deterministic() {
    let query = generate_query(&GenConfig::paper(9), 77);
    let a = optimize(&query, Algorithm::H2(1.03));
    let b = optimize(&query, Algorithm::H2(1.03));
    assert_eq!(a.plan.cost, b.plan.cost);
    assert_eq!(a.plans_built, b.plans_built);
    assert_eq!(format!("{}", a.plan.root), format!("{}", b.plan.root));
}

#[test]
fn all_algorithms_agree_on_results_across_sizes() {
    for n in [3usize, 5, 6] {
        let mut cfg = GenConfig::oracle(n);
        cfg.ops = OpWeights::mixed();
        for seed in 900..906 {
            let query = generate_query(&cfg, seed);
            let db = generate_data(&query, 7, 0.2, seed);
            let reference = query.canonical_plan().eval(&db);
            for algo in [Algorithm::DPhyp, Algorithm::H1, Algorithm::EaPrune] {
                let opt = optimize(&query, algo);
                assert!(
                    opt.plan.root.eval(&db).bag_eq(&reference),
                    "{} on n={n} seed={seed}",
                    algo.name()
                );
            }
        }
    }
}

#[test]
fn costs_are_monotone_in_algorithm_strength() {
    // EA-Prune ≤ H2 ≤ ∞, EA-Prune ≤ H1, EA-Prune ≤ DPhyp on every query.
    for seed in 950..962 {
        let query = generate_query(&GenConfig::paper(7), seed);
        let opt = optimize(&query, Algorithm::EaPrune).plan.cost;
        for algo in [
            Algorithm::DPhyp,
            Algorithm::H1,
            Algorithm::H2(1.01),
            Algorithm::H2(1.1),
        ] {
            let c = optimize(&query, algo).plan.cost;
            assert!(
                opt <= c * (1.0 + 1e-9),
                "{}: {opt} > {c} (seed {seed})",
                algo.name()
            );
        }
    }
}

#[test]
fn larger_queries_stay_tractable_for_heuristics() {
    // 16 relations: the heuristics and the baseline must finish fast.
    let query = generate_query(&GenConfig::paper(16), 4711);
    for algo in [Algorithm::DPhyp, Algorithm::H1, Algorithm::H2(1.03)] {
        let opt = optimize(&query, algo);
        assert!(opt.plan.cost.is_finite());
        assert!(
            opt.elapsed.as_secs_f64() < 10.0,
            "{} too slow: {:?}",
            algo.name(),
            opt.elapsed
        );
    }
}

#[test]
fn pure_join_ordering_without_grouping() {
    // Queries without a grouping spec: plain join ordering must work and
    // all algorithms degrade to it gracefully.
    let mut cfg = GenConfig::oracle(4);
    cfg.with_grouping = false;
    for seed in 970..976 {
        let query = generate_query(&cfg, seed);
        let db = generate_data(&query, 6, 0.1, seed);
        let reference = query.canonical_plan().eval(&db);
        for algo in [Algorithm::DPhyp, Algorithm::H1, Algorithm::EaAll] {
            let opt = optimize(&query, algo);
            assert!(
                opt.plan.root.eval(&db).bag_eq(&reference),
                "{}",
                algo.name()
            );
            assert_eq!(
                0,
                opt.plan.root.grouping_count(),
                "no grouping should appear"
            );
        }
    }
}

#[test]
fn optimizer_facade_runs_sql_end_to_end() {
    // The whole pipeline in one call: SQL text → parse/bind (TPC-H
    // catalog) → conflicted query → memo DP → optimized plan.
    let opt = Optimizer::new(Algorithm::EaPrune)
        .optimize_sql(
            "select n.n_name, count(*) \
             from nation n join supplier s on n.n_nationkey = s.s_nationkey \
             group by n.n_name",
        )
        .expect("valid SQL");
    assert!(opt.plan.cost.is_finite());
    assert!(opt.plans_built > 0);
    assert!(opt.memo.arena_plans > 0);
    assert!(!opt.explain.is_empty());

    // Binding errors surface as Err, not panics.
    assert!(Optimizer::new(Algorithm::H1)
        .optimize_sql("select no_such_col from nowhere")
        .is_err());
}

#[test]
fn optimizer_facade_executes_bound_sql() {
    // `optimize_sql_bound` exposes the occurrences needed to generate
    // data; the optimized plan must agree with the canonical plan.
    let facade = Optimizer::new(Algorithm::EaPrune);
    let (bound, opt) = facade
        .optimize_sql_bound(
            "select n.n_name, count(*) \
             from nation n join supplier s on n.n_nationkey = s.s_nationkey \
             group by n.n_name",
        )
        .expect("valid SQL");
    let occs: Vec<_> = bound
        .occurrences
        .iter()
        .enumerate()
        .map(|(i, (t, _, m))| (t.as_str(), &bound.query.tables[i], m))
        .collect();
    let db = dpnext::catalog::generate_database(0.01, 3, &occs);
    let reference = bound.query.canonical_plan().eval(&db);
    assert!(opt.plan.root.eval(&db).bag_eq(&reference));
}

#[test]
fn optimizer_facade_builder_knobs() {
    let query = generate_query(&GenConfig::paper(6), 123);
    // Stats toggle: explain rendering off, metrics still collected.
    let quiet = Optimizer::new(Algorithm::EaPrune)
        .explain(false)
        .optimize(&query);
    assert!(quiet.explain.is_empty());
    assert!(quiet.memo.arena_plans > 0);
    assert!(quiet.memo.prune_attempts > 0);

    // Dominance override: weaker criteria must never retain more plans
    // than the paper's full criterion.
    let full = Optimizer::new(Algorithm::EaPrune).optimize(&query);
    let cost_only = Optimizer::new(Algorithm::EaPrune)
        .dominance(DominanceKind::CostOnly)
        .optimize(&query);
    assert!(cost_only.retained_plans <= full.retained_plans);
    assert!(!full.explain.is_empty());
}

#[test]
fn memo_stats_are_consistent() {
    let query = generate_query(&GenConfig::paper(7), 7);
    let all = optimize(&query, Algorithm::EaAll);
    let pruned = optimize(&query, Algorithm::EaPrune);
    // EA-All keeps every plan: no prune activity, wide classes.
    assert_eq!(0, all.memo.prune_attempts);
    assert!(all.memo.peak_class_width >= pruned.memo.peak_class_width);
    // The arena holds at least the retained DP state; its peak also
    // covers transient complete plans.
    assert!(all.memo.arena_plans >= all.retained_plans);
    assert!(all.memo.arena_peak >= all.memo.arena_plans);
    assert!(pruned.memo.prune_hit_rate() > 0.0);
    assert!(pruned.memo.prune_hit_rate() <= 1.0);
}

#[test]
fn tpch_smoke_optimized_plans_match_oracle() {
    // Workspace smoke test: on a small TPC-H-shaped instance (schema and
    // data from `dpnext_catalog::tpch`, query shape from the paper's Q3),
    // the plans of DPhyp and EA-Prune must execute to the same bag of
    // tuples as the canonical (unoptimized) plan.
    let q = dpnext::workload::q3();
    let db = q.database(0.0015, 42);
    let reference = q.query.canonical_plan().eval(&db);
    for algo in [Algorithm::DPhyp, Algorithm::EaPrune] {
        let opt = optimize(&q.query, algo);
        assert!(
            opt.plan.root.eval(&db).bag_eq(&reference),
            "{} diverges from the oracle on TPC-H Q3",
            algo.name()
        );
    }
}
