//! Generate a random operator-tree workload (the §5 methodology), optimize
//! each query with the baseline and the heuristics, and summarize the
//! eager-aggregation gains — a miniature of the paper's evaluation you can
//! play with.
//!
//! Run with `cargo run --release --example random_workload [n_relations] [queries]`.

use dpnext::workload::{generate_query, GenConfig};
use dpnext::{Algorithm, Optimizer};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(8);
    let queries: u64 = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(25);

    let cfg = GenConfig::paper(n);
    println!(
        "# {queries} random queries over {n} relations (mixed join/outerjoin/semijoin trees)\n"
    );
    println!(
        "{:>6} {:>14} {:>14} {:>14} {:>10} {:>10}",
        "seed", "DPhyp", "H1", "H2(1.03)", "H1 gain", "H2 gain"
    );

    let (mut h1_wins, mut total_gain) = (0usize, 0.0f64);
    for seed in 0..queries {
        let query = generate_query(&cfg, seed);
        let dphyp = Optimizer::new(Algorithm::DPhyp).optimize(&query).plan.cost;
        let h1 = Optimizer::new(Algorithm::H1).optimize(&query).plan.cost;
        let h2 = Optimizer::new(Algorithm::H2(1.03))
            .optimize(&query)
            .plan
            .cost;
        if h1 < dphyp {
            h1_wins += 1;
        }
        total_gain += (dphyp / h1).ln();
        println!(
            "{seed:>6} {dphyp:>14.3e} {h1:>14.3e} {h2:>14.3e} {:>9.1}x {:>9.1}x",
            dphyp / h1,
            dphyp / h2
        );
    }
    println!(
        "\nH1 beat the baseline on {h1_wins}/{queries} queries; geometric-mean gain {:.2}x",
        (total_gain / queries as f64).exp()
    );
}
