//! Drive the whole system from SQL text through the [`Optimizer`] facade:
//! parse, bind against the TPC-H catalog, optimize with every algorithm,
//! execute at a small scale.
//!
//! Run with `cargo run --example sql_frontend ["<query>"]`.

use dpnext::catalog::generate_database;
use dpnext::{Algorithm, Optimizer};

const DEFAULT: &str = "select ns.n_name, nc.n_name, count(*) \
    from (nation ns join supplier s on ns.n_nationkey = s.s_nationkey) \
    full outer join \
    (nation nc join customer c on nc.n_nationkey = c.c_nationkey) \
    on ns.n_nationkey = nc.n_nationkey \
    group by ns.n_name, nc.n_name";

fn main() {
    let sql = std::env::args()
        .nth(1)
        .unwrap_or_else(|| DEFAULT.to_string());
    println!("SQL> {sql}\n");

    // Parse/bind once; the loop below reuses the bound query.
    let (bound, best) = match Optimizer::new(Algorithm::EaPrune).optimize_sql_bound(&sql) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    for algo in [Algorithm::DPhyp, Algorithm::H1, Algorithm::H2(1.03)] {
        let opt = Optimizer::new(algo).optimize(&bound.query);
        println!(
            "{:<12} estimated C_out = {:>14.1}   optimization time = {:>8.1} µs",
            algo.name(),
            opt.plan.cost,
            opt.elapsed.as_secs_f64() * 1e6
        );
    }
    println!(
        "{:<12} estimated C_out = {:>14.1}   optimization time = {:>8.1} µs",
        Algorithm::EaPrune.name(),
        best.plan.cost,
        best.elapsed.as_secs_f64() * 1e6
    );

    println!(
        "\nbound: {} table occurrence(s), output columns: {:?}",
        bound.query.table_count(),
        bound.output_names
    );
    println!(
        "memo: {} arena plans (peak {}), prune hit-rate {:.0}%",
        best.memo.arena_plans,
        best.memo.arena_peak,
        100.0 * best.memo.prune_hit_rate()
    );
    println!("\nbest plan:\n{}", best.plan.root);

    // Execute on a small synthetic instance.
    let occs: Vec<_> = bound
        .occurrences
        .iter()
        .enumerate()
        .map(|(i, (t, _, m))| (t.as_str(), &bound.query.tables[i], m))
        .collect();
    let db = generate_database(0.002, 7, &occs);
    let result = best.plan.root.eval(&db);
    println!("result ({} rows, scale 0.002):", result.len());
    println!("{}", bound.output_names.join("\t"));
    for row in result.tuples().iter().take(10) {
        let vals: Vec<String> = row.iter().map(|v| v.to_string()).collect();
        println!("{}", vals.join("\t"));
    }
    if result.len() > 10 {
        println!("… ({} more rows)", result.len() - 10);
    }
}
