//! Drive the whole system from SQL text: parse, bind against the TPC-H
//! catalog, optimize with every algorithm, execute at a small scale.
//!
//! Run with `cargo run --example sql_frontend ["<query>"]`.

use dpnext::core::{optimize, Algorithm};
use dpnext::sql::plan;
use dpnext_catalog::{generate_database, tpch_catalog};

const DEFAULT: &str = "select ns.n_name, nc.n_name, count(*) \
    from (nation ns join supplier s on ns.n_nationkey = s.s_nationkey) \
    full outer join \
    (nation nc join customer c on nc.n_nationkey = c.c_nationkey) \
    on ns.n_nationkey = nc.n_nationkey \
    group by ns.n_name, nc.n_name";

fn main() {
    let sql = std::env::args()
        .nth(1)
        .unwrap_or_else(|| DEFAULT.to_string());
    println!("SQL> {sql}\n");

    let mut catalog = tpch_catalog();
    let bound = match plan(&sql, &mut catalog) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    println!(
        "bound: {} table occurrence(s), output columns: {:?}\n",
        bound.query.table_count(),
        bound.output_names
    );

    for algo in [
        Algorithm::DPhyp,
        Algorithm::H1,
        Algorithm::H2(1.03),
        Algorithm::EaPrune,
    ] {
        let opt = optimize(&bound.query, algo);
        println!(
            "{:<12} estimated C_out = {:>14.1}   optimization time = {:>8.1} µs",
            algo.name(),
            opt.plan.cost,
            opt.elapsed.as_secs_f64() * 1e6
        );
    }

    let best = optimize(&bound.query, Algorithm::EaPrune);
    println!("\nbest plan:\n{}", best.plan.root);

    // Execute on a small synthetic instance.
    let occs: Vec<_> = bound
        .occurrences
        .iter()
        .enumerate()
        .map(|(i, (t, _, m))| (t.as_str(), &bound.query.tables[i], m))
        .collect();
    let db = generate_database(0.002, 7, &occs);
    let result = best.plan.root.eval(&db);
    println!("result ({} rows, scale 0.002):", result.len());
    for (i, names) in [bound.output_names].iter().enumerate() {
        let _ = i;
        println!("{}", names.join("\t"));
    }
    for row in result.tuples().iter().take(10) {
        let vals: Vec<String> = row.iter().map(|v| v.to_string()).collect();
        println!("{}", vals.join("\t"));
    }
    if result.len() > 10 {
        println!("… ({} more rows)", result.len() - 10);
    }
}
