//! Quickstart: build a small query, optimize it with every algorithm,
//! execute the plans and verify they agree.
//!
//! Run with `cargo run --example quickstart`.

use dpnext::algebra::{AggCall, AggKind, Expr, JoinPred, Relation, Value};
use dpnext::query::{GroupSpec, OpKind, OpTree, Query, QueryTable};
use dpnext::{Algorithm, Optimizer};
use dpnext_algebra::{AttrGen, AttrId, Database};

fn main() {
    // Schema: orders(o_id, o_cust), items(i_order, i_price),
    // customers(c_id, c_region).
    let o_id = AttrId(0);
    let o_cust = AttrId(1);
    let i_order = AttrId(2);
    let i_price = AttrId(3);
    let c_id = AttrId(4);
    let c_region = AttrId(5);

    let orders = QueryTable::new("orders", vec![o_id, o_cust], 1_000.0)
        .with_distinct(vec![1_000.0, 100.0])
        .with_key(vec![o_id]);
    let items = QueryTable::new("items", vec![i_order, i_price], 10_000.0)
        .with_distinct(vec![1_000.0, 500.0]);
    let customers = QueryTable::new("customers", vec![c_id, c_region], 100.0)
        .with_distinct(vec![100.0, 5.0])
        .with_key(vec![c_id]);

    // select c_region, count(*), sum(i_price)
    // from (orders join items on o_id = i_order)
    //      join customers on o_cust = c_id
    // group by c_region
    let tree = OpTree::binary_sel(
        OpKind::Join,
        JoinPred::eq(o_cust, c_id),
        1.0 / 100.0,
        OpTree::binary_sel(
            OpKind::Join,
            JoinPred::eq(o_id, i_order),
            1.0 / 1_000.0,
            OpTree::rel(0),
            OpTree::rel(1),
        ),
        OpTree::rel(2),
    );
    let mut gen = AttrGen::new(100);
    let spec = GroupSpec::new(
        vec![c_region],
        vec![
            AggCall::count_star(AttrId(200)),
            AggCall::new(AttrId(201), AggKind::Sum, Expr::attr(i_price)),
        ],
        &mut gen,
    );
    let query = Query::new(vec![orders, items, customers], tree, Some(spec));

    // A tiny concrete database to execute against.
    let mut db = Database::new();
    db.insert(
        "orders",
        Relation::from_ints(
            vec![o_id, o_cust],
            &[
                &[Some(0), Some(0)],
                &[Some(1), Some(0)],
                &[Some(2), Some(1)],
            ],
        ),
    );
    db.insert(
        "items",
        Relation::from_ints(
            vec![i_order, i_price],
            &[
                &[Some(0), Some(10)],
                &[Some(0), Some(20)],
                &[Some(1), Some(5)],
                &[Some(2), Some(7)],
            ],
        ),
    );
    db.insert(
        "customers",
        Relation::from_ints(
            vec![c_id, c_region],
            &[&[Some(0), Some(1)], &[Some(1), Some(2)]],
        ),
    );

    let reference = query.canonical_plan().eval(&db);
    println!("canonical result:\n{reference}");

    for algo in [
        Algorithm::DPhyp,
        Algorithm::H1,
        Algorithm::H2(1.03),
        Algorithm::EaAll,
        Algorithm::EaPrune,
    ] {
        let opt = Optimizer::new(algo).optimize(&query);
        let result = opt.plan.root.eval(&db);
        assert!(result.bag_eq(&reference), "{} plan disagrees!", algo.name());
        println!(
            "{:<12} estimated C_out = {:>10.1}   plans built = {:>5}   groupings in plan = {}",
            algo.name(),
            opt.plan.cost,
            opt.plans_built,
            opt.plan.root.grouping_count(),
        );
    }

    let best = Optimizer::new(Algorithm::EaPrune).optimize(&query);
    println!("\noptimal plan (EA-Prune):\n{}", best.plan.root);
    println!(
        "memo: {} arena plans, peak class width {}, prune hit-rate {:.0}%",
        best.memo.arena_plans,
        best.memo.peak_class_width,
        100.0 * best.memo.prune_hit_rate()
    );
    println!("EXPLAIN:\n{}", best.explain);
    let _ = Value::Int(0); // silence unused import lint in minimal builds
}
