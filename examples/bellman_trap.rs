//! The Bellman-principle violation of §4.4 (Fig. 11), step by step:
//! eager aggregation makes a locally more expensive subplan globally
//! optimal, which defeats the greedy heuristic H1 but not H2 or the
//! optimality-preserving EA-Prune.
//!
//! Run with `cargo run --example bellman_trap`.

use dpnext::workload::{fig11_database, fig11_query};
use dpnext::{Algorithm, Optimizer};

fn main() {
    let query = fig11_query();
    let db = fig11_database();

    println!("Fig. 11 query: Γ_d;count(*) (R0 ⋈ (R1 ⋈ R2)), data as printed in the paper\n");

    for algo in [
        Algorithm::DPhyp,
        Algorithm::H1,
        Algorithm::H2(1.5),
        Algorithm::EaAll,
        Algorithm::EaPrune,
    ] {
        let opt = Optimizer::new(algo).optimize(&query);
        let (result, measured) = opt.plan.root.eval_counting(&db);
        println!(
            "{:<12} estimated = {:>6.1}   measured C_out = {:>2}   top grouping kept = {}",
            algo.name(),
            opt.plan.cost,
            measured,
            opt.plan.top_grouping
        );
        assert!(result.bag_eq(&query.canonical_plan().eval(&db)));
    }

    println!(
        "\nPaper's Table 1: lazy tree = 10, eager tree = 9, eager + eliminated top grouping = 7."
    );
    println!("H1 discards the eager subplan (its local cost is higher) — the Bellman trap;");
    println!("H2's tolerance factor and EA-Prune's dominance pruning both escape it.\n");

    let best = Optimizer::new(Algorithm::EaPrune).optimize(&query);
    println!("optimal plan:\n{}", best.plan.root);
}
