//! The paper's motivating scenario (§1): grouping above a full outerjoin.
//!
//! Reproduces the introductory query *Ex* end to end: optimize with and
//! without eager aggregation, execute both plans on synthetic TPC-H data
//! and report the speedup — the outerjoin is a reordering barrier for
//! classic optimizers, which is exactly what the paper's equivalences
//! remove.
//!
//! Run with `cargo run --release --example tpch_outer_join [scale]`.

use dpnext::workload::ex_query;
use dpnext::{Algorithm, Optimizer};
use std::time::Instant;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(0.01);
    let ex = ex_query();
    println!("query: select ns.n_name, nc.n_name, count(*) from (nation ns ⋈ supplier) ⟗ (nation nc ⋈ customer) group by ns.n_name, nc.n_name\n");

    let db = ex.database(scale, 7);
    println!(
        "data at scale {scale}: supplier = {}, customer = {} rows",
        db.get("s").unwrap().len(),
        db.get("c").unwrap().len()
    );

    let baseline = Optimizer::new(Algorithm::DPhyp).optimize(&ex.query);
    let eager = Optimizer::new(Algorithm::EaPrune).optimize(&ex.query);

    let t0 = Instant::now();
    let (res_base, cout_base) = baseline.plan.root.eval_counting(&db);
    let t_base = t0.elapsed();

    let t1 = Instant::now();
    let (res_eager, cout_eager) = eager.plan.root.eval_counting(&db);
    let t_eager = t1.elapsed();

    assert!(res_base.bag_eq(&res_eager), "plans disagree");

    println!("\nbaseline (grouping on top):");
    println!(
        "  measured C_out = {cout_base}, wall clock = {:.3} ms",
        t_base.as_secs_f64() * 1e3
    );
    println!("eager aggregation (grouping pushed through the outerjoin):");
    println!(
        "  measured C_out = {cout_eager}, wall clock = {:.3} ms",
        t_eager.as_secs_f64() * 1e3
    );
    println!(
        "\nspeedup: {:.1}x wall clock, {:.1}x C_out (paper: 2140 ms → 1.51 ms on HyPer)",
        t_base.as_secs_f64() / t_eager.as_secs_f64(),
        cout_base as f64 / cout_eager as f64
    );
    println!("\neager plan:\n{}", eager.plan.root);
}
